"""Worker threads that execute admitted jobs under cancel scopes.

Each worker thread loops: take a job id from the admission queue, mark
it ``running`` (durably, via the journal), install a
:class:`~repro.engine.cancellation.CancelScope` carrying the job's
deadline, and execute the spec.  The scope is registered by job id so
the API's DELETE route can cancel a *running* job from another thread;
the engine raises :class:`~repro.errors.JobCancelledError` at the next
task-unit boundary, which the runner maps to the ``cancelled`` (or,
for deadline overruns, ``expired``) terminal state.

Solves run with the engine's checkpoint store active (when configured),
so a crash — or a drain that suspends in-flight work — leaves completed
chunks on disk and the recovered job *resumes* instead of restarting.
"""

from __future__ import annotations

import threading
import time

from repro.engine.cancellation import CancelScope, cancel_scope
from repro.engine.executor import parallel
from repro.engine.metrics import get_registry
from repro.errors import JobCancelledError
from repro.service.jobs import JobSpec, execute_spec, encode_result

__all__ = ["JobRunner"]


class JobRunner:
    """A fixed pool of job-executing threads over one store + queue."""

    def __init__(
        self, store, admission, *, workers: int = 2, executor=None,
        transport: str | None = None,
    ):
        self.store = store
        self.admission = admission
        self.workers = workers
        # Engine transport jobs execute on (None = the engine default
        # chain); "remote" ships task units to the registered fleet.
        self.transport = transport
        # Seam for tests: a callable spec -> (result, manifest, digest).
        self._executor = executor or execute_spec
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._suspending = False
        self._scopes: dict[str, CancelScope] = {}
        self._scopes_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._loop, name=f"repro-job-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def resume_recovered(self) -> None:
        """Re-enqueue jobs the store recovered from an unsealed journal."""
        for job_id in self.store.recovered_ids:
            record = self.store.get(job_id)
            if record is not None and record.status == "queued":
                self.admission.requeue(
                    job_id, tenant=record.tenant, priority=record.priority
                )

    def drain(self, timeout: float = 10.0) -> bool:
        """Stop taking new work; wait for in-flight jobs, then suspend.

        Returns True when every worker exited within ``timeout``.  Jobs
        still running at the deadline get their scopes cancelled — a
        *suspension*, not a loss: their completed chunks are
        checkpointed and the unsealed status in the journal re-enqueues
        them on the next start.
        """
        self._stop.set()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        if any(thread.is_alive() for thread in self._threads):
            self._suspending = True
            with self._scopes_lock:
                for scope in self._scopes.values():
                    scope.cancel()
            for thread in self._threads:
                thread.join(max(0.5, deadline - time.monotonic()))
        return not any(thread.is_alive() for thread in self._threads)

    # -- cancellation -------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a *running* job's scope; False when it is not running."""
        with self._scopes_lock:
            scope = self._scopes.get(job_id)
        if scope is None:
            return False
        scope.cancel()
        return True

    # -- the worker loop ----------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            job_id = self.admission.take(timeout=0.2)
            if job_id is None:
                continue
            try:
                record = self.store.get(job_id)
                # Cancelled (or otherwise finished) while queued: skip.
                if record is not None and record.status == "queued":
                    self._execute(record)
            finally:
                self.admission.release()

    def _execute(self, record) -> None:
        reg = get_registry()
        self.store.set_status(record.job_id, "running")
        scope = CancelScope(deadline_seconds=record.deadline_seconds)
        with self._scopes_lock:
            self._scopes[record.job_id] = scope
        started = time.monotonic()
        try:
            with cancel_scope(scope):
                if self.transport is None:
                    result, manifest, digest = self._executor(
                        JobSpec.from_dict(record.spec)
                    )
                else:
                    with parallel(transport=self.transport):
                        result, manifest, digest = self._executor(
                            JobSpec.from_dict(record.spec)
                        )
            self.store.save_result(
                record.job_id,
                digest=digest,
                result=encode_result(result),
                manifest=manifest,
            )
            self.store.set_status(record.job_id, "done")
            reg.increment("service.completed")
            reg.observe("service.job_seconds", time.monotonic() - started)
        except JobCancelledError as exc:
            if self._suspending and exc.reason != "deadline":
                # A drain suspension, not a user cancellation: back to
                # queued (durably), so the next start resumes the job
                # from its checkpoints.
                self.store.set_status(record.job_id, "queued", reason="suspended")
                reg.increment("service.suspended")
            else:
                status = "expired" if exc.reason == "deadline" else "cancelled"
                self.store.set_status(record.job_id, status, reason=exc.reason)
                reg.increment(f"service.{status}")
        except Exception as exc:  # noqa: BLE001 - a job must never kill its worker
            self.store.set_status(
                record.job_id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
            reg.increment("service.failed")
        finally:
            with self._scopes_lock:
                self._scopes.pop(record.job_id, None)
