"""repro — a container-based reproducibility framework for stochastic
process algebra modeling of parallel computing systems.

A from-scratch reproduction of Sanders, Srivastava & Banicescu (2019):

* :mod:`repro.pepa` — the PEPA language and CTMC analyses;
* :mod:`repro.biopepa` — Bio-PEPA with ODE/SSA/CTMC back-ends;
* :mod:`repro.gpepa` — grouped PEPA with fluid (mean-field) semantics;
* :mod:`repro.allocation` — the robustness-of-resource-allocation study
  (Table I, Figs. 2–4);
* :mod:`repro.core` — the container framework: recipes, images,
  builder, runtime, hub, and the native-vs-container validation harness;
* :mod:`repro.numerics` — shared sparse CTMC/ODE numerics;
* :mod:`repro.experiments` — one entry point per paper table/figure;
* :mod:`repro.cli` — the ``repro`` command-line interface.

Quickstart::

    from repro.core import Builder, ContainerRuntime, get_recipe_source
    image, _ = Builder().build(get_recipe_source("pepa"), name="pepa")
    result = ContainerRuntime().run(
        image, ["pepa", "solve", "/m.pepa"],
        binds={"/m.pepa": b"P = (go, 1.0).P1; P1 = (back, 2.0).P; P"},
    )
    print(result.stdout)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
