"""Replay of :class:`~repro.engine.run_manifest.RunManifest` artifacts.

The engine layer assembles manifests (see
:mod:`repro.engine.run_manifest`) but, by layering, knows nothing about
the frontends that turn model source text into IR.  This module is the
top-of-stack counterpart: it re-executes a manifest — parse the recorded
source with the recorded formalism, lower it for the recorded
capability, dispatch on the backend the original run actually *used* —
and optionally verifies bit-identity against the recorded result digest.

The public entry point is :func:`replay`::

    from repro.manifest import replay
    report = replay("MANIFEST.json", verify=True)   # raises on divergence
    report.result                                   # the re-computed result

``verify=True`` asserts two properties:

* the replayed result's canonical digest equals the recorded one
  (bit-identity of the numbers), and
* the replay's own manifest has the same :meth:`identity_digest` as the
  original (the reproducibility-relevant facts — model, parameters,
  seed spec, chunk structure, environment, backend used — all agree).

The CLI exposes this as ``repro replay MANIFEST.json [--verify]``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.engine.run_manifest import (
    MANIFEST_VERSION,
    RunManifest,
    attach_manifest,
    build_batch_manifest,
    build_solve_manifest,
    current_model_context,
    dataclass_descriptor,
    decode_params,
    encode_params,
    last_manifest,
    load_manifest,
    model_context,
    model_descriptor,
    result_digest,
    set_last_manifest,
)
from repro.errors import ReplayError

__all__ = [
    "MANIFEST_VERSION",
    "RunManifest",
    "ReplayReport",
    "attach_manifest",
    "build_batch_manifest",
    "build_solve_manifest",
    "current_model_context",
    "dataclass_descriptor",
    "decode_params",
    "encode_params",
    "instantiate_descriptor",
    "last_manifest",
    "load_manifest",
    "lower_for_capability",
    "model_context",
    "model_descriptor",
    "replay",
    "result_digest",
    "run_from_source",
    "set_last_manifest",
]


# ---------------------------------------------------------------------------
# Source -> IR (frontend-aware lowering, shared with the CLI)
# ---------------------------------------------------------------------------

def lower_for_capability(
    formalism: str,
    source: str,
    capability: str,
    derive_backend: str | None = None,
):
    """Lower model ``source`` to the IR the requested capability runs on.

    Returns ``(ir, labels)`` where ``labels`` names the states/species
    of the solution vectors.  ``derive_backend`` selects a non-default
    derivation strategy for PEPA sources (``population`` lowers to the
    orbit-quotient chain); other formalisms reject it.  Raises
    :class:`ReplayError` for combinations that have no finite-CTMC
    semantics (gpepa is lowered to population dynamics only).
    """
    markov = capability in ("steady", "transient", "passage")
    if formalism == "pepa":
        from repro.pepa import ctmc_of, derive, parse_model

        if derive_backend is not None:
            from repro.ir import solve as ir_solve

            ir = ir_solve(
                parse_model(source), "derive", backend=derive_backend
            )
            labels = ir.labels or tuple(
                str(i) for i in range(ir.n_states)
            )
            return ir, labels
        chain = ctmc_of(derive(parse_model(source)))
        return chain.lower(), tuple(
            chain.space.state_label(i) for i in range(chain.n_states)
        )
    if derive_backend is not None:
        raise ReplayError(
            f"derive backend {derive_backend!r} only applies to the pepa "
            "formalism"
        )
    if formalism == "biopepa":
        from repro.biopepa import parse_biopepa, population_ctmc

        model = parse_biopepa(source)
        if markov:
            chain = population_ctmc(model)
            return chain.lower(), chain.lower().labels
        from repro.biopepa.lower import lower_reactions

        ir = lower_reactions(model)
        return ir, ir.species
    if formalism == "gpepa":
        # gpepa: population semantics only (no finite global CTMC).
        if markov:
            raise ReplayError(
                f"capability {capability!r} requires a finite CTMC; the "
                "gpepa frontend lowers to population dynamics — use "
                "capability ode or ssa"
            )
        from repro.gpepa import parse_gpepa
        from repro.gpepa.lower import lower_reactions as lower_grouped

        ir = lower_grouped(parse_gpepa(source))
        return ir, ir.species
    raise ReplayError(f"unknown formalism {formalism!r}")


def run_from_source(
    formalism: str,
    source: str,
    capability: str,
    backend: str | None = None,
    derive_backend: str | None = None,
    **params,
):
    """Solve model source text through the registry, under a model
    context so the resulting manifest is self-contained (replayable)."""
    from repro.ir import solve as ir_solve

    descriptor = model_descriptor(
        formalism, source, derive_backend=derive_backend
    )
    with model_context(descriptor):
        ir, _labels = lower_for_capability(
            formalism, source, capability, derive_backend=derive_backend
        )
        return ir_solve(ir, capability, backend=backend, **params)


# ---------------------------------------------------------------------------
# Descriptor reconstruction (batch-run model objects)
# ---------------------------------------------------------------------------

def _reconstruct_mapping(descriptor: dict):
    from repro.allocation.mapping import Mapping

    fields = decode_params(descriptor.get("fields", {}))
    return Mapping(
        name=fields["name"],
        assignments={
            machine: tuple(apps)
            for machine, apps in fields["assignments"].items()
        },
    )


def _reconstruct_workload(descriptor: dict):
    from repro.allocation.workload import Workload

    return Workload(**decode_params(descriptor.get("fields", {})))


#: Descriptor types :func:`replay` knows how to instantiate.  An
#: allowlist, not dynamic import: manifests are plain JSON from
#: arbitrary sources and must not name code to execute.
_DESCRIPTOR_TYPES = {
    "repro.allocation.mapping.Mapping": _reconstruct_mapping,
    "repro.allocation.workload.Workload": _reconstruct_workload,
}


def instantiate_descriptor(descriptor: dict):
    """Reconstruct a model object from its manifest descriptor.

    Only the allowlisted :data:`_DESCRIPTOR_TYPES` are honored —
    descriptors are plain JSON from arbitrary sources (manifests, job
    submissions) and must never name code to execute.  Raises
    :class:`~repro.errors.ReplayError` for anything else.
    """
    type_name = descriptor.get("type") if isinstance(descriptor, dict) else None
    builder = _DESCRIPTOR_TYPES.get(type_name)
    if builder is None:
        raise ReplayError(
            f"manifest names a model object of unsupported type {type_name!r}"
        )
    return builder(descriptor)


_instantiate = instantiate_descriptor


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one manifest.

    ``digest_match``/``identity_match`` are ``None`` when the original
    manifest recorded no result digest to compare against.
    """

    manifest: RunManifest          #: the manifest that was replayed
    result: object                 #: the re-computed result
    replay_manifest: RunManifest | None  #: manifest of the replay run
    digest_match: bool | None      #: result digest == recorded digest
    identity_match: bool | None    #: identity_digest agrees with original

    @property
    def verified(self) -> bool:
        return bool(self.digest_match) and bool(self.identity_match)


def _check_model_integrity(model: dict) -> str:
    source = model.get("source")
    if not isinstance(source, str):
        raise ReplayError("manifest's model has no source text to replay")
    recorded = model.get("sha256")
    actual = hashlib.sha256(source.encode("utf-8")).hexdigest()
    if recorded is not None and recorded != actual:
        raise ReplayError(
            "manifest model source does not match its recorded sha256 "
            f"({actual[:12]}… != {recorded[:12]}…) — the manifest was edited"
        )
    return source


def _replay_solve(manifest: RunManifest):
    model = manifest.model or {}
    source = _check_model_integrity(model)
    backend = (manifest.backend or {}).get("used")
    return run_from_source(
        model.get("formalism"),
        source,
        manifest.capability,
        backend=backend,
        derive_backend=model.get("derive_backend"),
        **manifest.decoded_params(),
    )


def _replay_makespan(manifest: RunManifest):
    from repro.allocation.cdf import makespan_cdf

    model = manifest.model or {}
    if "mapping" not in model or "workload" not in model:
        raise ReplayError(
            "makespan_cdf manifest lacks mapping/workload descriptors"
        )
    mapping = _instantiate(model["mapping"])
    workload = _instantiate(model["workload"])
    params = manifest.decoded_params()
    return makespan_cdf(
        mapping,
        workload,
        params["times"],
        tail_tol=params.get("tail_tol", 1e-2),
        method=params.get("method", "uniformization"),
    )


def replay(manifest, verify: bool = False) -> ReplayReport:
    """Re-execute a run manifest; optionally assert bit-identity.

    Parameters
    ----------
    manifest:
        A :class:`RunManifest`, or a path to a manifest JSON file.
    verify:
        When true, raise :class:`ReplayError` unless the replayed
        result's digest equals the recorded one *and* the replay's
        manifest carries the same identity digest as the original.
    """
    if not isinstance(manifest, RunManifest):
        manifest = load_manifest(manifest)
    if not manifest.replayable:
        raise ReplayError(
            f"manifest of kind {manifest.kind!r} is not self-contained "
            "enough to replay (replayable: false)"
        )
    set_last_manifest(None)
    if manifest.kind == "solve":
        result = _replay_solve(manifest)
    elif manifest.kind == "makespan_cdf":
        result = _replay_makespan(manifest)
    else:
        raise ReplayError(f"cannot replay manifests of kind {manifest.kind!r}")

    replayed = last_manifest()
    recorded_digest = (manifest.result or {}).get("digest")
    new_digest = result_digest(result)
    digest_match = (
        None if recorded_digest is None else new_digest == recorded_digest
    )
    identity_match = (
        None
        if recorded_digest is None or replayed is None
        else replayed.identity_digest() == manifest.identity_digest()
    )
    report = ReplayReport(
        manifest=manifest,
        result=result,
        replay_manifest=replayed,
        digest_match=digest_match,
        identity_match=identity_match,
    )
    if verify:
        if digest_match is None:
            raise ReplayError(
                "manifest records no result digest; nothing to verify against"
            )
        if not digest_match:
            raise ReplayError(
                "replay diverged: result digest "
                f"{(new_digest or '(none)')[:12]}… != recorded "
                f"{recorded_digest[:12]}…"
            )
        if identity_match is False:
            raise ReplayError(
                "replay diverged: the replay's manifest identity digest "
                "does not match the original (model, parameters, seed "
                "spec, chunking or environment differ)"
            )
    return report
