"""Shared experiment-execution engine: parallelism, caching, metrics.

Three orthogonal facilities every analysis layer builds on:

``executor``
    Ordered fan-out of independent work units over a process pool with
    deterministic per-task seeding — parallel results are bit-identical
    to sequential ones (see the module docstring for the contract).
``cache``
    Content-addressed result cache (in-memory LRU plus optional disk
    layer) keyed on canonical hashes of (model, solver, parameters).
``metrics``
    Process-wide registry of solver wall times, state-space sizes,
    iteration counts and cache hit/miss counters, surfaced by the
    ``repro metrics`` CLI subcommand.
"""

from repro.engine.cache import (
    ResultCache,
    Uncacheable,
    cache_disabled,
    cache_override,
    cached,
    canonical_key,
    configure_cache,
    get_cache,
)
from repro.engine.executor import (
    EngineConfig,
    current_config,
    parallel,
    run_tasks,
    spawn_seeds,
    welford_merge,
)
from repro.engine.metrics import (
    MetricsRegistry,
    get_registry,
    increment,
    metrics_snapshot,
    render_metrics,
    reset_metrics,
    timer,
)

__all__ = [
    # executor
    "EngineConfig",
    "parallel",
    "current_config",
    "run_tasks",
    "spawn_seeds",
    "welford_merge",
    # cache
    "ResultCache",
    "Uncacheable",
    "canonical_key",
    "cached",
    "get_cache",
    "configure_cache",
    "cache_disabled",
    "cache_override",
    # metrics
    "MetricsRegistry",
    "get_registry",
    "increment",
    "timer",
    "metrics_snapshot",
    "reset_metrics",
    "render_metrics",
]
