"""Shared experiment-execution engine: parallelism, caching, metrics.

Four orthogonal facilities every analysis layer builds on:

``executor`` / ``transport``
    Ordered fan-out of independent work units over a pluggable transport
    (inline, supervised process pool, fresh worker subprocesses, or the
    lease-based remote worker fleet in :mod:`repro.engine.remote`) with
    deterministic per-task seeding — results are bit-identical across
    worker counts *and* transports (see the executor docstring for the
    contract).  ``remote`` is imported lazily on first use; reach it via
    ``get_transport("remote")`` or ``$REPRO_TRANSPORT=remote``.
``run_manifest`` / ``environment``
    Self-contained reproducibility manifests assembled around every
    engine run — model hash, seed spec, backend chain, chunk structure,
    environment fingerprint — serializable to JSON and re-executable by
    ``repro replay``.
``resilience`` / ``faults``
    Fault tolerance for unattended runs: the supervised pool loop
    (per-task timeout, bounded retry, broken-pool recovery, sequential
    degradation), checkpointed batches under ``$REPRO_CHECKPOINT_DIR``,
    and the deterministic fault-injection harness the chaos suite uses
    to prove bit-identity under failure.
``cache``
    Content-addressed result cache (in-memory LRU plus optional disk
    layer, SHA-256 integrity trailer on every entry) keyed on canonical
    hashes of (model, solver, parameters).
``metrics``
    Process-wide registry of solver wall times, state-space sizes,
    iteration counts and cache hit/miss counters, surfaced by the
    ``repro metrics`` CLI subcommand.
"""

from repro.engine import faults
from repro.engine.cancellation import (
    CancelScope,
    cancel_scope,
    current_scope,
)
from repro.engine.cache import (
    ResultCache,
    Uncacheable,
    cache_disabled,
    cache_override,
    cached,
    canonical_key,
    configure_cache,
    get_cache,
    seal_payload,
    unseal_payload,
    unseal_payload_env,
)
from repro.engine.environment import environment_fingerprint, platform_info
from repro.engine.executor import (
    EngineConfig,
    current_config,
    parallel,
    run_tasks,
    spawn_seeds,
    welford_merge,
)
from repro.engine.metrics import (
    MetricsRegistry,
    get_registry,
    increment,
    metrics_snapshot,
    render_metrics,
    reset_metrics,
    timer,
)
from repro.engine.resilience import (
    CheckpointStore,
    ResiliencePolicy,
    configure_checkpoints,
    get_checkpoint_store,
    resolve_policy,
    supervised_map,
)
from repro.engine.transport import (
    InlineTransport,
    ProcessPoolTransport,
    SubprocessWorkerTransport,
    Transport,
    available_transports,
    get_transport,
    resolve_transport,
)

__all__ = [
    # executor
    "EngineConfig",
    "parallel",
    "current_config",
    "run_tasks",
    "spawn_seeds",
    "welford_merge",
    # cancellation
    "CancelScope",
    "cancel_scope",
    "current_scope",
    # resilience
    "ResiliencePolicy",
    "resolve_policy",
    "supervised_map",
    "CheckpointStore",
    "configure_checkpoints",
    "get_checkpoint_store",
    "faults",
    # cache
    "ResultCache",
    "Uncacheable",
    "canonical_key",
    "cached",
    "get_cache",
    "configure_cache",
    "cache_disabled",
    "cache_override",
    "seal_payload",
    "unseal_payload",
    "unseal_payload_env",
    # transport
    "Transport",
    "InlineTransport",
    "ProcessPoolTransport",
    "SubprocessWorkerTransport",
    "available_transports",
    "get_transport",
    "resolve_transport",
    # environment
    "environment_fingerprint",
    "platform_info",
    # metrics
    "MetricsRegistry",
    "get_registry",
    "increment",
    "timer",
    "metrics_snapshot",
    "reset_metrics",
    "render_metrics",
]
