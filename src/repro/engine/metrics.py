"""Lightweight metrics registry for the solver entry points.

Every hot path in the library — state-space derivation, CTMC
aggregation, steady-state and passage-time solves, SSA ensembles —
records a wall-time observation here, together with whatever gauges it
knows about (state-space size, iteration counts, events simulated).
The cache layer records hit/miss counters.  The registry is cheap
enough to stay on unconditionally: one lock acquisition and a couple of
dict updates per solver call.

The registry is process-local.  Worker processes spawned by the
executor accumulate their own metrics; only the parent's registry is
surfaced by the ``repro metrics`` CLI subcommand.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "MetricsRegistry",
    "TimerStat",
    "get_registry",
    "increment",
    "timer",
    "metrics_snapshot",
    "reset_metrics",
    "render_metrics",
]


@dataclass
class TimerStat:
    """Aggregated wall-time observations for one instrumented name."""

    calls: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0
    #: Summed numeric gauges (e.g. total states derived across calls).
    gauges: dict[str, float] = field(default_factory=dict)
    #: Gauge values from the most recent observation.
    last: dict[str, float] = field(default_factory=dict)

    def observe(self, seconds: float, **gauges: float) -> None:
        self.calls += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)
        for name, value in gauges.items():
            self.gauges[name] = self.gauges.get(name, 0.0) + float(value)
            self.last[name] = float(value)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class MetricsRegistry:
    """Thread-safe counters and wall-time timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._timers: dict[str, TimerStat] = {}

    # -- counters -----------------------------------------------------------

    def increment(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def timer_stat(self, name: str) -> dict | None:
        """JSON-friendly snapshot of one timer, or ``None`` if never observed."""
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                return None
            return {
                "calls": stat.calls,
                "total_seconds": stat.total_seconds,
                "mean_seconds": stat.mean_seconds,
                "min_seconds": stat.min_seconds if stat.calls else 0.0,
                "max_seconds": stat.max_seconds,
                "gauges": dict(stat.gauges),
                "last": dict(stat.last),
            }

    # -- timers -------------------------------------------------------------

    def observe(self, name: str, seconds: float, **gauges: float) -> None:
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.observe(seconds, **gauges)

    @contextmanager
    def timer(self, name: str):
        """Time a block; numeric values put into the yielded dict become
        gauges of the observation::

            with registry.timer("derive") as meta:
                space = ...
                meta["n_states"] = space.size
        """
        meta: dict[str, float] = {}
        start = time.perf_counter()
        try:
            yield meta
        finally:
            elapsed = time.perf_counter() - start
            gauges = {
                k: float(v) for k, v in meta.items() if isinstance(v, (int, float))
            }
            self.observe(name, elapsed, **gauges)

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict copy of every counter and timer (JSON-friendly)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {
                    name: {
                        "calls": stat.calls,
                        "total_seconds": stat.total_seconds,
                        "mean_seconds": stat.mean_seconds,
                        "min_seconds": stat.min_seconds if stat.calls else 0.0,
                        "max_seconds": stat.max_seconds,
                        "gauges": dict(stat.gauges),
                        "last": dict(stat.last),
                    }
                    for name, stat in self._timers.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()

    def render(self) -> str:
        """Human-readable metrics table."""
        snap = self.snapshot()
        lines: list[str] = []
        timers = snap["timers"]
        if timers:
            lines.append("solver timers:")
            width = max(len(n) for n in timers)
            lines.append(
                f"  {'name':<{width}} {'calls':>6} {'total[s]':>10} {'mean[s]':>10}  gauges"
            )
            for name in sorted(timers):
                t = timers[name]
                gauges = ", ".join(
                    f"{k}={_fmt_num(v)}" for k, v in sorted(t["gauges"].items())
                )
                lines.append(
                    f"  {name:<{width}} {t['calls']:>6} {t['total_seconds']:>10.4f} "
                    f"{t['mean_seconds']:>10.4f}  {gauges}"
                )
        counters = snap["counters"]
        if counters:
            lines.append("counters:")
            width = max(len(n) for n in counters)
            for name in sorted(counters):
                lines.append(f"  {name:<{width}} {counters[name]}")
        if not lines:
            lines.append("no metrics recorded yet (run a solver or an experiment first)")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)


def _fmt_num(v: float) -> str:
    return str(int(v)) if float(v).is_integer() else f"{v:.4g}"


#: The process-wide registry used by every instrumented entry point.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def increment(name: str, by: int = 1) -> None:
    _REGISTRY.increment(name, by)


def timer(name: str):
    return _REGISTRY.timer(name)


def metrics_snapshot() -> dict:
    return _REGISTRY.snapshot()


def reset_metrics() -> None:
    _REGISTRY.reset()


def render_metrics() -> str:
    return _REGISTRY.render()
