"""Execution-environment fingerprinting for manifests and cache sealing.

The source paper's contribution is packaging: a run is only reproducible
if the artifact records *where* it ran.  Two consumers share this
module:

* run manifests (:mod:`repro.engine.run_manifest`) embed the full
  fingerprint so a replay can assert it is re-executing under the same
  numerical stack;
* the disk cache (:mod:`repro.engine.cache`) seals the fingerprint into
  every entry's integrity trailer, so a cache directory carried to a
  different numpy/scipy/python is detected instead of silently served —
  a float produced by one BLAS build is not evidence about another.

The fingerprint is deliberately small and deterministic: package
versions and the interpreter version only.  Hostnames, timestamps and
process ids never belong in it — they would make bit-identical runs
look different.
"""

from __future__ import annotations

import platform
import sys

__all__ = ["environment_fingerprint", "platform_info"]


def environment_fingerprint() -> dict[str, str]:
    """The numerical-stack identity of this process.

    Two processes with equal fingerprints are expected to produce
    bit-identical floating-point results for the engine's workloads;
    a cache or checkpoint written under a different fingerprint must
    not be trusted.
    """
    import numpy
    import scipy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
    }


def platform_info() -> dict[str, str]:
    """Observational platform facts for manifests (not part of the
    reproducibility identity: a manifest replayed on a different
    machine may still verify bit-for-bit)."""
    return {
        "system": platform.system(),
        "machine": platform.machine(),
        "python_implementation": platform.python_implementation(),
        "executable": sys.executable,
    }
