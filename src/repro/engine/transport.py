"""Transport abstraction: *where* chunked task units run.

The determinism contract lives one layer up — chunk boundaries and
per-task seeds are a function of the task list alone (see
:mod:`repro.engine.executor`) — so the engine is free to ship the same
task units anywhere.  A :class:`Transport` is exactly that freedom made
explicit: :meth:`~Transport.submit_chunks` hands it an ordered batch,
:meth:`~PendingBatch.collect` returns results in task order, and
*bit-identity is transport-invariant* because nothing about seeding,
chunking or reduction order is the transport's business.

Four transports ship:

``inline``
    Sequential, in the calling process.  No isolation, no fault
    injection, no pickling requirement — the reference execution.
``pool``
    The supervised process pool (:func:`repro.engine.resilience.supervised_map`)
    ported intact: bounded in-flight submission, per-task deadlines,
    bounded retries with backoff, broken-pool rebuild, degradation to
    sequential, deterministic fault injection.
``subprocess``
    Each task unit ships to a *fresh* worker process
    (:mod:`repro.engine.worker`) as an integrity-sealed pickle over a
    pipe — the prototype for remote workers.  Per-task deadlines,
    retries and crash recovery mirror the pool's resilience policy;
    fault injection works unchanged because the worker runs the same
    shim.
``remote``
    Task units ship over HTTP to a registered worker fleet
    (:mod:`repro.engine.remote`) under lease-based assignment with
    heartbeats, failover re-dispatch, straggler digest verification and
    per-worker circuit breakers.  Degrades to ``pool`` (and thence to
    sequential) when no healthy worker is reachable.  Registered
    lazily on first request to avoid a circular import.

Selection: ``run_tasks(transport=...)`` > ``parallel(transport=...)`` >
``$REPRO_TRANSPORT`` > automatic (inline when effectively sequential,
pool otherwise).
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.engine.cancellation import NULL_SCOPE, current_scope
from repro.engine.metrics import get_registry
from repro.engine.resilience import ResiliencePolicy, resolve_policy, supervised_map
from repro.errors import TaskTimeoutError, TransportError

__all__ = [
    "Transport",
    "PendingBatch",
    "InlineTransport",
    "ProcessPoolTransport",
    "SubprocessWorkerTransport",
    "available_transports",
    "get_transport",
    "resolve_transport",
]


@dataclass(frozen=True)
class PendingBatch:
    """A submitted batch whose results have not been collected yet.

    Transports are synchronous today, so :meth:`collect` is where the
    work actually runs; the submit/collect split is the seam a future
    remote transport needs (submit = enqueue over the wire, collect =
    await the result stream) without changing any caller.
    """

    transport: str
    n_tasks: int
    _run: Callable[[], list]

    def collect(self) -> list:
        """Execute (if not already executing) and return results in
        task order."""
        return self._run()


class Transport:
    """Interface for running a batch of independent task units.

    Capability flags let callers adapt without ``isinstance`` checks:

    ``isolates_tasks``
        Task units run outside the calling process (a crash cannot take
        the parent down; payloads must pickle).
    ``supports_fault_injection``
        The deterministic fault harness (``$REPRO_FAULT_PLAN``) reaches
        the task execution path on this transport.
    ``fresh_process_per_task``
        Every task unit sees a cold process (no warm imports, no shared
        module state) — the property replay verification relies on.
    """

    name: str = "abstract"
    isolates_tasks: bool = False
    supports_fault_injection: bool = False
    fresh_process_per_task: bool = False

    def submit_chunks(
        self,
        fn: Callable,
        tasks: Sequence,
        *,
        workers: int = 1,
        policy: ResiliencePolicy | None = None,
        on_result: Callable[[int, object], None] | None = None,
    ) -> PendingBatch:
        raise NotImplementedError

    def run(
        self,
        fn: Callable,
        tasks: Sequence,
        *,
        workers: int = 1,
        policy: ResiliencePolicy | None = None,
        on_result: Callable[[int, object], None] | None = None,
    ) -> list:
        """Submit and collect in one call — what synchronous callers use."""
        return self.submit_chunks(
            fn, tasks, workers=workers, policy=policy, on_result=on_result
        ).collect()


class InlineTransport(Transport):
    """Sequential execution in the calling process — the reference path.

    Exceptions propagate immediately; there are no retries because
    nothing here can fail transiently (no pool, no pipe, no pickling).
    """

    name = "inline"

    def submit_chunks(self, fn, tasks, *, workers=1, policy=None, on_result=None):
        tasks = list(tasks)

        def _run() -> list:
            results = []
            for index, task in enumerate(tasks):
                value = fn(task)
                if on_result is not None:
                    on_result(index, value)
                results.append(value)
            return results

        return PendingBatch(self.name, len(tasks), _run)


class ProcessPoolTransport(Transport):
    """The supervised process pool, behind the transport seam.

    Delegates to :func:`repro.engine.resilience.supervised_map`
    unchanged — every resilience behavior (timeouts, retries, rebuilds,
    sequential degradation, fault injection) is that function's,
    verified by the chaos suite.
    """

    name = "pool"
    isolates_tasks = True
    supports_fault_injection = True

    def submit_chunks(self, fn, tasks, *, workers=1, policy=None, on_result=None):
        tasks = list(tasks)
        workers = max(1, min(workers, len(tasks) or 1))

        def _run() -> list:
            return supervised_map(
                fn, tasks, workers=workers, policy=policy, on_result=on_result
            )

        return PendingBatch(self.name, len(tasks), _run)


class SubprocessWorkerTransport(Transport):
    """Ship each task unit to a fresh worker process over a pipe.

    The unit on the wire is ``seal_payload(pickle((fn, index, task)))``
    — the same self-describing, integrity-sealed shape a manifest's
    chunk table records — and the reply is a sealed ``("ok", value)`` /
    ``("err", exc)`` frame (see :mod:`repro.engine.worker`).  Up to
    ``workers`` child processes run concurrently, driven by parent
    threads.

    Resilience mirrors :func:`supervised_map` per task: a deadline
    overrun kills the child and retries (then raises
    :class:`~repro.errors.TaskTimeoutError`); an uncontrolled child
    death or a corrupt reply frame retries (then raises
    :class:`~repro.errors.TransportError`); an exception raised by the
    task retries (then re-raises the task's own exception); a result
    that cannot pickle degrades that task to in-parent execution
    (``engine.pickle_fallback``), exactly like the pool.
    """

    name = "subprocess"
    isolates_tasks = True
    supports_fault_injection = True
    fresh_process_per_task = True

    def submit_chunks(self, fn, tasks, *, workers=1, policy=None, on_result=None):
        tasks = list(tasks)
        workers = max(1, min(workers, len(tasks) or 1))
        if policy is None:
            policy = resolve_policy()
        # Cancel scopes are thread-local; the pool threads below would
        # see only the null scope, so capture the submitter's here.
        scope = current_scope()

        def _run() -> list:
            if not tasks:
                return []
            if workers == 1:
                return [
                    self._run_one(fn, i, task, policy, on_result, scope)
                    for i, task in enumerate(tasks)
                ]
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(self._run_one, fn, i, task, policy, on_result, scope)
                    for i, task in enumerate(tasks)
                ]
                return [f.result() for f in futures]

        return PendingBatch(self.name, len(tasks), _run)

    # -- one task unit, with retries ----------------------------------------

    @staticmethod
    def _worker_env() -> dict[str, str]:
        env = dict(os.environ)
        # The child must be able to import repro from a cold start; the
        # parent's sys.path is authoritative regardless of install layout.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        return env

    #: How often a cancellable wait re-checks its scope while the child runs.
    _POLL_SECONDS = 0.1

    def _run_one(self, fn, index, task, policy, on_result, scope=NULL_SCOPE):
        from repro.engine.cache import seal_payload, unseal_payload

        reg = get_registry()
        scope.raise_if_cancelled()
        try:
            unit = seal_payload(
                pickle.dumps((fn, index, task), protocol=pickle.HIGHEST_PROTOCOL)
            )
        except Exception:
            # Task payload does not pickle: run it here, like the pool's
            # per-task pickle fallback.
            reg.increment("engine.pickle_fallback")
            return self._record(fn(task), index, on_result)

        attempts = 0
        while True:
            scope.raise_if_cancelled()
            reg.increment("engine.subprocess_tasks")
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.engine.worker"],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=self._worker_env(),
            )
            try:
                out = self._drive(proc, unit, policy, scope)
            except subprocess.TimeoutExpired:
                attempts += 1
                reg.increment("engine.task_timeouts")
                if attempts > policy.max_retries:
                    raise TaskTimeoutError(
                        f"task {index} exceeded its {policy.task_timeout:g}s "
                        f"deadline on every one of {attempts} attempts"
                    )
                self._backoff(policy, attempts)
                continue
            finally:
                self._reap(proc, reg)
            failure: BaseException | None = None
            if proc.returncode != 0:
                reg.increment("engine.worker_crashes")
                failure = TransportError(
                    f"worker for task {index} exited with code {proc.returncode} "
                    "before producing a result frame"
                )
            else:
                payload = unseal_payload(out)
                if payload is None:
                    failure = TransportError(
                        f"result frame for task {index} failed its integrity check"
                    )
                else:
                    status, value = pickle.loads(payload)
                    if status == "ok":
                        return self._record(value, index, on_result)
                    if status == "unpicklable":
                        reg.increment("engine.pickle_fallback")
                        return self._record(fn(task), index, on_result)
                    failure = (
                        value if status == "err" else TransportError(str(value))
                    )
            attempts += 1
            if attempts > policy.max_retries:
                raise failure
            reg.increment("engine.retries")
            self._backoff(policy, attempts)

    def _drive(self, proc, unit, policy, scope):
        """Pump the sealed unit through ``proc`` and return its stdout.

        Waits in short slices when a live cancel scope is installed so a
        cancellation (or deadline) interrupts the wait within
        ``_POLL_SECONDS`` instead of after the child finishes.  Raises
        :class:`subprocess.TimeoutExpired` on a per-task deadline
        overrun and :class:`~repro.errors.JobCancelledError` on
        cancellation; either way the caller's ``finally`` owns killing
        and reaping the child.
        """
        deadline = (
            None
            if policy.task_timeout is None
            else time.monotonic() + policy.task_timeout
        )
        payload = unit
        while True:
            scope.raise_if_cancelled()
            wait = self._POLL_SECONDS if scope.active else None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise subprocess.TimeoutExpired(proc.args, policy.task_timeout)
                wait = remaining if wait is None else min(wait, remaining)
            try:
                out, _ = proc.communicate(payload, timeout=wait)
                return out
            except subprocess.TimeoutExpired:
                if not scope.active and deadline is None:
                    raise  # unreachable: wait was None
                # The unit is already on the pipe; later rounds only poll.
                payload = None

    @staticmethod
    def _reap(proc, reg) -> None:
        """Guarantee the child is dead *and* waited on — never a zombie.

        A child that exited normally was already reaped inside
        ``communicate``; this only pays (kill + wait, counted as
        ``engine.worker_reaped``) when the task unit was abandoned —
        deadline overrun, cancellation, or an error unsealing the reply.
        """
        if proc.returncode is not None:
            return
        proc.kill()
        try:
            proc.communicate()  # drain pipes; kill() guarantees exit
        except (ValueError, OSError):  # pragma: no cover - interpreter quirks
            proc.wait()
        reg.increment("engine.worker_reaped")

    @staticmethod
    def _record(value, index, on_result):
        if on_result is not None:
            on_result(index, value)
        return value

    @staticmethod
    def _backoff(policy: ResiliencePolicy, attempt: int) -> None:
        if policy.backoff_base > 0:
            time.sleep(
                min(policy.backoff_cap, policy.backoff_base * 2 ** max(0, attempt - 1))
            )


_TRANSPORTS: dict[str, Transport] = {
    t.name: t for t in (InlineTransport(), ProcessPoolTransport(),
                        SubprocessWorkerTransport())
}

#: Transports registered on first use instead of at import time.  The
#: remote fleet transport lives in :mod:`repro.engine.remote`, which
#: imports this module — eager construction here would be circular.
_LAZY_TRANSPORTS = ("remote",)


def available_transports() -> tuple[str, ...]:
    return tuple(sorted(set(_TRANSPORTS) | set(_LAZY_TRANSPORTS)))


def get_transport(name: str) -> Transport:
    """Resolve a transport by name; raises :class:`TransportError`."""
    transport = _TRANSPORTS.get(name)
    if transport is None and name in _LAZY_TRANSPORTS:
        from repro.engine.remote import RemoteWorkerTransport

        transport = _TRANSPORTS.setdefault(name, RemoteWorkerTransport())
    if transport is None:
        raise TransportError(
            f"unknown transport {name!r}; available: {list(available_transports())}"
        )
    return transport


def resolve_transport(name: str | None, workers: int) -> Transport:
    """The effective transport: explicit name, else ``$REPRO_TRANSPORT``,
    else automatic (inline when sequential, pool otherwise)."""
    if name is None:
        name = os.environ.get("REPRO_TRANSPORT") or None
    if name is not None:
        return get_transport(name)
    return _TRANSPORTS["inline" if workers <= 1 else "pool"]
