"""Fault-tolerant remote worker fleet: lease-based distributed transport.

This is the remote end of the transport seam
(:mod:`repro.engine.transport`): a stdlib-only coordinator + worker
pair that ships the *same* content-addressed task units the subprocess
transport pipes to children — ``seal_payload(pickle((fn, index,
task)))`` in, a sealed ``("ok", value)`` / ``("err", exc)`` frame out —
over HTTP to long-lived worker processes, possibly on other hosts.

The determinism contract is untouched: seeds are spawned per task
before submission and results are reduced in task order (see
:mod:`repro.engine.executor`), so re-running one unit anywhere, any
number of times, reproduces it bit-identically.  Everything in this
module exists to exploit that freedom safely when workers die, hang, or
partition mid-ensemble:

**Registration.**  A worker registers with the coordinator carrying its
environment fingerprint (:func:`repro.engine.environment
.environment_fingerprint`) and the shared-secret bearer token.  A bad
token is refused (403); a numerical stack that differs from the
coordinator's is refused (409, counted ``engine.remote_env_rejected``)
— a mismatched worker is rejected *at registration*, never trusted
with a unit whose float output could silently differ.

**Leases.**  A granted unit carries a deadline-bearing lease, renewed
by the worker's heartbeats and clamped to the submitting cancel
scope's own deadline.  A missed heartbeat or an expired lease marks
the worker suspect: only its unfinished units are re-dispatched (to
the front of the queue), each re-run bit-identical by the same-seed
rerun contract.  When a straggler's late result races its replacement,
the two result digests are compared — agreement is counted
(``engine.remote_digest_agreements``), divergence fails the batch
loudly (``engine.remote_digest_divergence``) because two answers for
one unit means the determinism contract itself is broken.

**Circuit breaker.**  Per worker: consecutive delivery failures open
the breaker (no grants) for an exponentially growing backoff; a
half-open probe unit then decides between closing it and re-opening.
Flapping nodes stop receiving work without operator action.

**Degradation is total-order.**  No healthy worker for
``$REPRO_REMOTE_CONNECT_WAIT`` seconds degrades the remaining units to
the supervised pool transport (which itself degrades to sequential
in-parent execution) — remote → pool → inline, every step
bit-identical.  A single unit that keeps bouncing
(``$REPRO_REMOTE_MAX_REDISPATCH`` re-dispatches) runs in-parent
instead of starving the batch.

Fault kinds (:mod:`repro.engine.faults`) this layer enacts:
``heartbeat_loss`` (worker computes but stops heartbeating for
``sleep`` seconds), ``worker_partition`` (worker finishes, then all of
its traffic is black-holed for ``sleep`` seconds before the late
delivery), ``lease_expiry`` (the coordinator force-expires one unit's
lease despite a healthy worker).  ``worker_crash`` / ``task_timeout``
/ ``task_error`` work unchanged because units run through the same
:func:`repro.engine.resilience._invoke` shim as every other transport.

Knobs (all ``REPRO_REMOTE_*``, documented in ``docs/engine.md``):
``BIND``, ``TOKEN``, ``LEASE``, ``HEARTBEAT``, ``CONNECT_WAIT``,
``MAX_REDISPATCH``, ``BREAKER_FAILURES``, ``BREAKER_BACKOFF``,
``SPAWN``.  ``repro worker`` (or ``python -m repro.engine.remote``)
runs the worker loop; ``repro serve --transport remote`` starts the
coordinator inside the job service so N workers form a shardable
fleet.
"""

from __future__ import annotations

import argparse
import atexit
import base64
import hashlib
import hmac
import itertools
import json
import os
import pickle
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine import faults
from repro.engine.cache import seal_payload, unseal_payload
from repro.engine.cancellation import current_scope
from repro.engine.environment import environment_fingerprint
from repro.engine.metrics import get_registry
from repro.engine.resilience import ResiliencePolicy, _invoke, resolve_policy
from repro.engine.transport import PendingBatch, Transport
from repro.errors import JobCancelledError, TransportError, WorkerRejectedError

__all__ = [
    "FleetConfig",
    "FleetCoordinator",
    "RemoteWorkerTransport",
    "start_coordinator",
    "get_coordinator",
    "coordinator_url",
    "shutdown_fleet",
    "run_worker",
    "main",
]

#: Parent-side collect loop tick (lease expiry / cancellation latency).
_TICK_SECONDS = 0.05


def _env_number(name: str, default, convert):
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return convert(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class FleetConfig:
    """Coordinator tuning, resolved from ``REPRO_REMOTE_*`` by default.

    ``lease_seconds`` is both the per-unit lease length and the worker
    liveness window (a worker silent for that long is suspect);
    ``heartbeat_seconds`` defaults to a third of the lease so a healthy
    worker renews well inside it.
    """

    bind: str = "127.0.0.1:0"
    token: str | None = None
    lease_seconds: float = 15.0
    heartbeat_seconds: float | None = None
    connect_wait: float = 10.0
    max_redispatch: int = 5
    breaker_failures: int = 3
    breaker_backoff: float = 0.5
    breaker_backoff_cap: float = 30.0
    spawn: int = 0

    @property
    def heartbeat(self) -> float:
        if self.heartbeat_seconds is not None:
            return self.heartbeat_seconds
        return max(0.05, self.lease_seconds / 3.0)

    @classmethod
    def from_env(cls, **overrides) -> FleetConfig:
        values = {
            "bind": os.environ.get("REPRO_REMOTE_BIND") or "127.0.0.1:0",
            "token": os.environ.get("REPRO_REMOTE_TOKEN")
            or os.environ.get("REPRO_SERVE_TOKEN")
            or None,
            "lease_seconds": _env_number("REPRO_REMOTE_LEASE", 15.0, float),
            "heartbeat_seconds": _env_number("REPRO_REMOTE_HEARTBEAT", None, float),
            "connect_wait": _env_number("REPRO_REMOTE_CONNECT_WAIT", 10.0, float),
            "max_redispatch": _env_number("REPRO_REMOTE_MAX_REDISPATCH", 5, int),
            "breaker_failures": _env_number("REPRO_REMOTE_BREAKER_FAILURES", 3, int),
            "breaker_backoff": _env_number("REPRO_REMOTE_BREAKER_BACKOFF", 0.5, float),
            "spawn": _env_number("REPRO_REMOTE_SPAWN", 0, int),
        }
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)


def _check_token(expected: str | None, presented: str | None) -> bool:
    if not expected:
        return True
    if presented is None:
        return False
    return hmac.compare_digest(expected.encode("utf-8"), presented.encode("utf-8"))


def _bearer(headers) -> str | None:
    auth = headers.get("Authorization") or ""
    if auth.startswith("Bearer "):
        return auth[len("Bearer "):]
    return None


# ---------------------------------------------------------------------------
# Coordinator-side state
# ---------------------------------------------------------------------------


class _Breaker:
    """Per-worker circuit breaker: closed → open → half-open → closed.

    A *delivery* failure (expired lease, missed heartbeat, worker
    death) counts against the worker; a task's own exception does not —
    the worker delivered a frame, the task simply failed.
    """

    def __init__(self, config: FleetConfig):
        self._config = config
        self.state = "closed"
        self.failures = 0
        self.open_until = 0.0
        self._backoff = config.breaker_backoff
        self.probe_inflight = False

    def allow(self, now: float) -> bool:
        if self.state == "closed":
            return True
        if self.state == "open":
            if now < self.open_until:
                return False
            self.state = "half-open"
            self.probe_inflight = False
            get_registry().increment("engine.remote_breaker_half_open")
        # half-open: exactly one probe unit in flight at a time.
        return not self.probe_inflight

    def record_failure(self, now: float) -> None:
        self.failures += 1
        self.probe_inflight = False
        if self.state == "half-open" or self.failures >= self._config.breaker_failures:
            if self.state != "open":
                get_registry().increment("engine.remote_breaker_open")
            self.state = "open"
            self.open_until = now + self._backoff
            self._backoff = min(
                self._config.breaker_backoff_cap, self._backoff * 2.0
            )

    def record_success(self) -> None:
        if self.state != "closed":
            get_registry().increment("engine.remote_breaker_closed")
        self.state = "closed"
        self.failures = 0
        self.probe_inflight = False
        self._backoff = self._config.breaker_backoff


class _Worker:
    """Coordinator-side view of one registered worker."""

    def __init__(self, worker_id: str, fingerprint: dict, config: FleetConfig):
        self.worker_id = worker_id
        self.fingerprint = fingerprint
        self.last_seen = time.monotonic()
        self.alive = True
        self.breaker = _Breaker(config)
        self.leases: set[str] = set()


class _Unit:
    """One content-addressed task unit and its delivery state."""

    __slots__ = (
        "unit_id", "batch", "index", "payload", "attempts", "redispatches",
        "lease_worker", "lease_deadline", "no_renew", "done", "digest",
        "value", "local", "inbox",
    )

    def __init__(self, unit_id: str, batch: "_Batch", index: int, payload: bytes | None):
        self.unit_id = unit_id
        self.batch = batch
        self.index = index
        self.payload = payload
        self.attempts = 0          # task-level ("err") retries
        self.redispatches = 0      # delivery-level re-grants
        self.lease_worker: str | None = None
        self.lease_deadline: float | None = None
        self.no_renew = False      # a force-expired lease stays expired
        self.done = False
        self.digest: str | None = None
        self.value = None
        self.local = payload is None  # unpicklable unit: run in-parent
        self.inbox: list[tuple[str, bytes]] = []


class _Batch:
    """Parent-side record of one submitted batch."""

    def __init__(self, batch_id, fn, tasks, policy, on_result, scope, workers):
        self.batch_id = batch_id
        self.fn = fn
        self.tasks = tasks
        self.policy = policy
        self.on_result = on_result
        self.scope = scope
        self.workers = workers
        self.units: list[_Unit] = []
        self.results: dict[int, object] = {}
        self.failure: BaseException | None = None
        self.aborted = False

    def record(self, index: int, value) -> None:
        if index in self.results:
            return
        self.results[index] = value
        if self.on_result is not None:
            self.on_result(index, value)

    def done(self) -> bool:
        return len(self.results) == len(self.tasks)


class FleetCoordinator:
    """Lease-based dispatch of sealed task units to registered workers.

    One instance serves every concurrent batch of its process; the
    HTTP front end (:class:`_FleetHandler`) and the submitting threads
    (:class:`RemoteWorkerTransport`) both call straight into it.  All
    state is guarded by one lock; frame *processing* (unpickling
    results, retry decisions, digest comparison) happens in the
    submitting thread via :meth:`pump`, never in HTTP handler threads.
    """

    def __init__(self, config: FleetConfig | None = None):
        self.config = config or FleetConfig.from_env()
        self._lock = threading.RLock()
        self._workers: dict[str, _Worker] = {}
        self._units: dict[str, _Unit] = {}
        self._pending: deque[_Unit] = deque()
        self._batch_seq = itertools.count()
        self.fingerprint = environment_fingerprint()

    # -- worker-facing API (HTTP threads) -----------------------------------

    def register(self, worker_id: str, fingerprint, token: str | None):
        """Admit (or refuse) a worker; returns ``(http_status, body)``."""
        reg = get_registry()
        if not _check_token(self.config.token, token):
            reg.increment("engine.remote_auth_rejected")
            return 403, {"error": "bad or missing fleet token"}
        if not isinstance(fingerprint, dict) or fingerprint != self.fingerprint:
            reg.increment("engine.remote_env_rejected")
            return 409, {
                "error": "environment fingerprint mismatch",
                "coordinator": self.fingerprint,
                "worker": fingerprint,
            }
        with self._lock:
            known = worker_id in self._workers
            self._workers[worker_id] = _Worker(worker_id, fingerprint, self.config)
        if not known:
            reg.increment("engine.remote_workers_registered")
        return 200, {
            "ok": True,
            "heartbeat": self.config.heartbeat,
            "lease": self.config.lease_seconds,
        }

    def heartbeat(self, worker_id: str):
        """Renew the worker's liveness and every renewable lease it holds."""
        now = time.monotonic()
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                return 410, {"error": f"unknown worker {worker_id!r}"}
            worker.last_seen = now
            worker.alive = True
            for unit_id in worker.leases:
                unit = self._units.get(unit_id)
                if unit is not None and not unit.no_renew:
                    unit.lease_deadline = now + self._lease_span(unit, now)
            return 200, {"ok": True, "leases": len(worker.leases)}

    def grant(self, worker_id: str):
        """Lease the next pending unit to ``worker_id`` (pull model)."""
        now = time.monotonic()
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                return 410, {"error": f"unknown worker {worker_id!r}"}
            worker.last_seen = now
            worker.alive = True
            if not worker.breaker.allow(now):
                return 200, {"unit": None, "backoff": self.config.heartbeat}
            while self._pending:
                unit = self._pending.popleft()
                if unit.done or unit.local or unit.batch.aborted:
                    continue
                span = self._lease_span(unit, now)
                unit.lease_worker = worker_id
                unit.lease_deadline = now + span
                unit.no_renew = False
                # Chaos hook: force this lease to expire despite a
                # healthy, heartbeating worker.
                if faults.should_fire("lease_expiry", task_index=unit.index):
                    unit.no_renew = True
                    unit.lease_deadline = now + min(0.2, span)
                worker.leases.add(unit.unit_id)
                if worker.breaker.state == "half-open":
                    worker.breaker.probe_inflight = True
                get_registry().increment("engine.remote_units_granted")
                return 200, {
                    "unit": {
                        "id": unit.unit_id,
                        "payload": base64.b64encode(unit.payload).decode("ascii"),
                        "lease": span,
                    }
                }
            return 200, {"unit": None}

    def deliver(self, worker_id: str, unit_id: str, frame: bytes):
        """Accept a result frame; it is processed later by :meth:`pump`."""
        now = time.monotonic()
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                return 410, {"error": f"unknown worker {worker_id!r}"}
            worker.last_seen = now
            worker.alive = True
            worker.leases.discard(unit_id)
            unit = self._units.get(unit_id)
            if unit is None:
                # A straggler of an already-finished (or aborted) batch.
                get_registry().increment("engine.remote_orphan_results")
                return 200, {"accepted": False}
            if unit.lease_worker == worker_id:
                unit.lease_worker = None
                unit.lease_deadline = None
            unit.inbox.append((worker_id, frame))
            return 200, {"accepted": True}

    def status_snapshot(self) -> dict:
        with self._lock:
            return {
                "workers": {
                    w.worker_id: {
                        "alive": w.alive,
                        "breaker": w.breaker.state,
                        "leases": len(w.leases),
                    }
                    for w in self._workers.values()
                },
                "pending_units": len(self._pending),
                "units": len(self._units),
            }

    # -- parent-facing API (submitting threads) -----------------------------

    def submit_batch(self, fn, tasks, policy, on_result, scope, workers) -> _Batch:
        """Seal each ``(fn, index, task)`` into a content-addressed unit."""
        reg = get_registry()
        batch_id = f"b{next(self._batch_seq)}-{os.urandom(4).hex()}"
        batch = _Batch(batch_id, fn, list(tasks), policy, on_result, scope, workers)
        with self._lock:
            for index, task in enumerate(batch.tasks):
                try:
                    payload = seal_payload(
                        pickle.dumps(
                            (fn, index, task), protocol=pickle.HIGHEST_PROTOCOL
                        )
                    )
                except Exception:
                    # The unit does not pickle: it runs in-parent, like
                    # every other transport's pickle fallback.
                    reg.increment("engine.pickle_fallback")
                    payload = None
                content = (
                    "local" if payload is None
                    else hashlib.sha256(payload).hexdigest()[:16]
                )
                unit = _Unit(f"{batch_id}-{index:06d}-{content}", batch, index, payload)
                batch.units.append(unit)
                self._units[unit.unit_id] = unit
                if not unit.local:
                    self._pending.append(unit)
        return batch

    def _lease_span(self, unit: _Unit, now: float) -> float:
        """Lease length for ``unit``, clamped to its batch's deadline."""
        span = self.config.lease_seconds
        if unit.batch.policy.task_timeout is not None:
            span = min(span, unit.batch.policy.task_timeout)
        remaining = unit.batch.scope.remaining()
        if remaining is not None:
            span = min(span, max(0.05, remaining))
        return span

    def _expire_unit(self, unit: _Unit, now: float, metric: str) -> None:
        """Release an expired lease and queue the unit for re-dispatch."""
        reg = get_registry()
        worker = self._workers.get(unit.lease_worker or "")
        if worker is not None:
            worker.leases.discard(unit.unit_id)
            worker.breaker.record_failure(now)
        unit.lease_worker = None
        unit.lease_deadline = None
        reg.increment(metric)
        unit.redispatches += 1
        if unit.redispatches > self.config.max_redispatch:
            # The unit keeps bouncing: guarantee progress in-parent.
            unit.local = True
        else:
            reg.increment("engine.remote_redispatched")
            self._pending.appendleft(unit)

    def tick(self) -> None:
        """Advance failure detection: lost workers, expired leases."""
        now = time.monotonic()
        with self._lock:
            for worker in self._workers.values():
                if worker.alive and now - worker.last_seen > self.config.lease_seconds:
                    worker.alive = False
                    get_registry().increment("engine.remote_workers_lost")
                    for unit_id in list(worker.leases):
                        unit = self._units.get(unit_id)
                        if unit is not None and not unit.done:
                            self._expire_unit(unit, now, "engine.remote_heartbeat_missed")
                    worker.leases.clear()
            for unit in list(self._units.values()):
                if (
                    not unit.done
                    and unit.lease_deadline is not None
                    and now >= unit.lease_deadline
                ):
                    self._expire_unit(unit, now, "engine.remote_lease_expired")

    def pump(self, batch: _Batch) -> list[tuple[int, object]]:
        """Process delivered frames for ``batch``; return completions.

        Runs in the submitting thread.  Handles the whole result state
        machine: first-wins completion, task-error retries, unpicklable
        degradation, and the straggler digest race.
        """
        reg = get_registry()
        now = time.monotonic()
        completions: list[tuple[int, object]] = []
        with self._lock:
            for unit in batch.units:
                while unit.inbox:
                    worker_id, frame = unit.inbox.pop(0)
                    worker = self._workers.get(worker_id)
                    payload = unseal_payload(frame)
                    if payload is None:
                        reg.increment("engine.remote_corrupt_frames")
                        if worker is not None:
                            worker.breaker.record_failure(now)
                        if not unit.done and not unit.local:
                            self._pending.appendleft(unit)
                        continue
                    digest = hashlib.sha256(payload).hexdigest()
                    try:
                        status, value = pickle.loads(payload)
                    except Exception:
                        reg.increment("engine.remote_corrupt_frames")
                        if not unit.done and not unit.local:
                            self._pending.appendleft(unit)
                        continue
                    if unit.done:
                        # The straggler race: a late result for a unit a
                        # replacement already finished.  Bit-identity
                        # means the digests must agree.
                        if status == "ok":
                            if digest == unit.digest:
                                reg.increment("engine.remote_digest_agreements")
                            else:
                                reg.increment("engine.remote_digest_divergence")
                                if batch.failure is None:
                                    batch.failure = TransportError(
                                        f"unit {unit.unit_id} produced two "
                                        "divergent results "
                                        f"({unit.digest[:12]}… vs {digest[:12]}…): "
                                        "the same-seed rerun contract is broken"
                                    )
                        continue
                    if status == "ok":
                        unit.done = True
                        unit.digest = digest
                        unit.value = value
                        if worker is not None:
                            worker.breaker.record_success()
                        completions.append((unit.index, value))
                    elif status == "unpicklable":
                        reg.increment("engine.pickle_fallback")
                        unit.local = True
                        if worker is not None:
                            worker.breaker.record_success()
                    else:  # "err" (a pickled exception) or "err_str"
                        exc = (
                            value
                            if isinstance(value, BaseException)
                            else TransportError(str(value))
                        )
                        if worker is not None:
                            # The worker delivered; the *task* failed.
                            worker.breaker.record_success()
                        unit.attempts += 1
                        if unit.attempts > batch.policy.max_retries:
                            if batch.failure is None:
                                batch.failure = exc
                        else:
                            reg.increment("engine.retries")
                            self._pending.appendleft(unit)
        return completions

    def take_local(self, batch: _Batch) -> list[_Unit]:
        """Units flagged for in-parent execution, claimed exactly once."""
        with self._lock:
            out = [
                u for u in batch.units
                if u.local and not u.done and u.index not in batch.results
            ]
            for unit in out:
                unit.done = True  # claimed; the caller records the value
            return out

    def healthy_count(self) -> int:
        now = time.monotonic()
        with self._lock:
            return sum(
                1
                for w in self._workers.values()
                if w.alive and w.breaker.allow(now)
            )

    def abort_batch(self, batch: _Batch) -> list[int]:
        """Withdraw a batch's unfinished units; returns their indexes."""
        with self._lock:
            batch.aborted = True
            remaining = []
            for unit in batch.units:
                if unit.index not in batch.results:
                    remaining.append(unit.index)
                if unit.lease_worker is not None:
                    worker = self._workers.get(unit.lease_worker)
                    if worker is not None:
                        worker.leases.discard(unit.unit_id)
                    unit.lease_worker = None
                    unit.lease_deadline = None
            self._pending = deque(
                u for u in self._pending if u.batch is not batch
            )
            return sorted(remaining)

    def finish_batch(self, batch: _Batch) -> None:
        """Drop a batch's units from the tables (collect() is done)."""
        with self._lock:
            for unit in batch.units:
                self._units.pop(unit.unit_id, None)
            self._pending = deque(
                u for u in self._pending if u.batch is not batch
            )


# ---------------------------------------------------------------------------
# Coordinator HTTP front end
# ---------------------------------------------------------------------------


class _FleetHandler(BaseHTTPRequestHandler):
    """JSON shim over :class:`FleetCoordinator` — no logic of its own."""

    server_version = "repro-fleet/1"
    protocol_version = "HTTP/1.1"

    @property
    def coordinator(self) -> FleetCoordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if os.environ.get("REPRO_SERVE_LOG"):
            sys.stderr.write(
                "%s - %s\n" % (self.address_string(), format % args)
            )

    def _reply(self, status: int, body: dict) -> None:
        blob = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _read_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw) if raw else None
        except ValueError:
            return None
        return body if isinstance(body, dict) else None

    def _authorized(self) -> bool:
        return _check_token(self.coordinator.config.token, _bearer(self.headers))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        body = self._read_body()
        if body is None:
            self._reply(400, {"error": "request body must be a JSON object"})
            return
        path = self.path.rstrip("/")
        if path == "/v1/fleet/register":
            # Registration carries the token itself through the header;
            # _check_token runs inside register() so the refusal is
            # counted as an auth rejection, not a transport 401.
            status, answer = self.coordinator.register(
                str(body.get("worker", "")),
                body.get("fingerprint"),
                _bearer(self.headers),
            )
            self._reply(status, answer)
            return
        if not self._authorized():
            self._reply(401, {"error": "unauthorized"})
            return
        worker_id = str(body.get("worker", ""))
        if path == "/v1/fleet/lease":
            status, answer = self.coordinator.grant(worker_id)
        elif path == "/v1/fleet/heartbeat":
            status, answer = self.coordinator.heartbeat(worker_id)
        elif path == "/v1/fleet/result":
            try:
                frame = base64.b64decode(body.get("frame", ""))
            except (ValueError, TypeError):
                self._reply(400, {"error": "frame must be base64"})
                return
            status, answer = self.coordinator.deliver(
                worker_id, str(body.get("unit", "")), frame
            )
        else:
            status, answer = 404, {"error": f"no route POST {self.path}"}
        self._reply(status, answer)

    def do_GET(self) -> None:  # noqa: N802
        if self.path.rstrip("/") == "/v1/fleet/status":
            if not self._authorized():
                self._reply(401, {"error": "unauthorized"})
                return
            self._reply(200, self.coordinator.status_snapshot())
            return
        self._reply(404, {"error": f"no route GET {self.path}"})


# ---------------------------------------------------------------------------
# Process-wide fleet lifecycle
# ---------------------------------------------------------------------------

_FLEET_LOCK = threading.Lock()
_COORDINATOR: FleetCoordinator | None = None
_HTTPD: ThreadingHTTPServer | None = None
_URL: str | None = None
_SPAWNED: list[subprocess.Popen] = []
_ATEXIT_INSTALLED = False


def start_coordinator(
    bind: str | None = None,
    token: str | None = None,
    config: FleetConfig | None = None,
) -> tuple[FleetCoordinator, str]:
    """Start (or return) the process-wide coordinator and its URL.

    Idempotent: a second call returns the running instance.  The bind
    address defaults to ``$REPRO_REMOTE_BIND`` (``127.0.0.1:0`` — an
    ephemeral loopback port).
    """
    global _COORDINATOR, _HTTPD, _URL, _ATEXIT_INSTALLED
    with _FLEET_LOCK:
        if _COORDINATOR is not None:
            return _COORDINATOR, _URL  # type: ignore[return-value]
        cfg = config or FleetConfig.from_env(bind=bind, token=token)
        host, _, port_text = cfg.bind.partition(":")
        try:
            port = int(port_text or 0)
        except ValueError:
            raise TransportError(
                f"malformed fleet bind address {cfg.bind!r}; expected host:port"
            ) from None
        coordinator = FleetCoordinator(cfg)
        httpd = ThreadingHTTPServer((host or "127.0.0.1", port), _FleetHandler)
        httpd.daemon_threads = True
        httpd.coordinator = coordinator  # type: ignore[attr-defined]
        thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-fleet-coordinator",
            daemon=True,
        )
        thread.start()
        _COORDINATOR = coordinator
        _HTTPD = httpd
        _URL = f"http://{host or '127.0.0.1'}:{httpd.server_address[1]}"
        if not _ATEXIT_INSTALLED:
            atexit.register(shutdown_fleet)
            _ATEXIT_INSTALLED = True
        return coordinator, _URL


def get_coordinator() -> FleetCoordinator | None:
    """The running coordinator, or ``None``."""
    return _COORDINATOR


def coordinator_url() -> str | None:
    """The running coordinator's base URL, or ``None``."""
    return _URL


def shutdown_fleet() -> None:
    """Stop the coordinator and reap any auto-spawned workers."""
    global _COORDINATOR, _HTTPD, _URL
    with _FLEET_LOCK:
        httpd, _COORDINATOR, _HTTPD, _URL = _HTTPD, None, None, None
        spawned, _SPAWNED[:] = list(_SPAWNED), []
    if httpd is not None:
        httpd.shutdown()
        httpd.server_close()
    for proc in spawned:
        if proc.poll() is None:
            proc.terminate()
    for proc in spawned:
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def _worker_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return env


def _maintain_spawned(url: str, config: FleetConfig) -> None:
    """Keep ``config.spawn`` local worker processes attached to ``url``."""
    if config.spawn <= 0:
        return
    with _FLEET_LOCK:
        _SPAWNED[:] = [p for p in _SPAWNED if p.poll() is None]
        while len(_SPAWNED) < config.spawn:
            _SPAWNED.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.engine.remote",
                        "--coordinator", url,
                        "--poll", f"{max(0.02, config.heartbeat / 2):g}",
                    ],
                    env=_worker_env(),
                    stdout=subprocess.DEVNULL,
                )
            )
            get_registry().increment("engine.remote_workers_spawned")


# ---------------------------------------------------------------------------
# The transport
# ---------------------------------------------------------------------------


class RemoteWorkerTransport(Transport):
    """Ship task units to the registered worker fleet under leases.

    Registered lazily as ``remote`` (see
    :func:`repro.engine.transport.get_transport`); selected like any
    other transport — ``run_tasks(transport="remote")``,
    ``parallel(transport="remote")`` or ``$REPRO_TRANSPORT=remote`` —
    so manifests record it automatically and the degradation chain
    remote → pool → inline rides the existing selection seam.
    """

    name = "remote"
    isolates_tasks = True
    supports_fault_injection = True
    fresh_process_per_task = False

    def submit_chunks(self, fn, tasks, *, workers=1, policy=None, on_result=None):
        tasks = list(tasks)
        if policy is None:
            policy = resolve_policy()
        scope = current_scope()

        def _run() -> list:
            if not tasks:
                return []
            coordinator, url = start_coordinator()
            _maintain_spawned(url, coordinator.config)
            batch = coordinator.submit_batch(
                fn, tasks, policy, on_result, scope, workers
            )
            try:
                return self._collect(coordinator, batch, scope)
            finally:
                coordinator.finish_batch(batch)

        return PendingBatch(self.name, len(tasks), _run)

    def _collect(self, coordinator: FleetCoordinator, batch: _Batch, scope) -> list:
        reg = get_registry()
        config = coordinator.config
        last_healthy = time.monotonic()
        while True:
            try:
                scope.raise_if_cancelled()
            except JobCancelledError:
                coordinator.abort_batch(batch)
                raise
            coordinator.tick()
            for index, value in coordinator.pump(batch):
                batch.record(index, value)
            if batch.failure is not None:
                coordinator.abort_batch(batch)
                raise batch.failure
            for unit in coordinator.take_local(batch):
                reg.increment("engine.remote_local_units")
                batch.record(unit.index, batch.fn(batch.tasks[unit.index]))
            if batch.done():
                return [batch.results[i] for i in range(len(batch.tasks))]
            now = time.monotonic()
            if coordinator.healthy_count() > 0:
                last_healthy = now
            elif now - last_healthy >= config.connect_wait:
                return self._degrade(coordinator, batch)
            time.sleep(_TICK_SECONDS)

    def _degrade(self, coordinator: FleetCoordinator, batch: _Batch) -> list:
        """No healthy workers: finish on the supervised pool transport.

        The pool itself degrades to sequential in-parent execution when
        it keeps dying, so the full chain is remote → pool → inline —
        every rung bit-identical because the task units and their seeds
        are unchanged.
        """
        from repro.engine.transport import get_transport

        get_registry().increment("engine.remote_degraded")
        remaining = coordinator.abort_batch(batch)
        if remaining:
            get_transport("pool").run(
                batch.fn,
                [batch.tasks[i] for i in remaining],
                workers=max(1, min(batch.workers, len(remaining))),
                policy=batch.policy,
                on_result=lambda j, value: batch.record(remaining[j], value),
            )
        return [batch.results[i] for i in range(len(batch.tasks))]


# ---------------------------------------------------------------------------
# The worker process
# ---------------------------------------------------------------------------


class _CoordinatorClient:
    """Worker-side HTTP plumbing (urllib, token header, JSON bodies)."""

    def __init__(self, base_url: str, token: str | None, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = timeout

    def post(self, path: str, body: dict) -> tuple[int, dict]:
        data = json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method="POST", headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {}
            return exc.code, payload


class _WorkerState:
    """Mutable worker-side state shared with the heartbeat thread."""

    def __init__(self):
        self.suppress_until = 0.0  # monotonic; heartbeat_loss / partition
        self.stop = threading.Event()

    def suppressed(self) -> bool:
        return time.monotonic() < self.suppress_until


def _heartbeat_loop(
    client: _CoordinatorClient, worker_id: str, interval: float, state: _WorkerState
) -> None:
    while not state.stop.wait(interval):
        if state.suppressed():
            continue
        try:
            client.post("/v1/fleet/heartbeat", {"worker": worker_id})
        except (urllib.error.URLError, ConnectionError, OSError):
            pass  # the lease loop owns giving up; a beat is best-effort


def _execute_unit(payload: bytes, state: _WorkerState | None = None) -> tuple[bytes, int]:
    """Run one unsealed unit; returns ``(sealed frame, index)``.

    Mirrors :mod:`repro.engine.worker` frame-for-frame: the reply is a
    sealed pickle of ``("ok", value)`` / ``("err", exc)`` /
    ``("err_str", traceback)`` / ``("unpicklable", message)``, and the
    task runs through the fault-injection shim so ``worker_crash``,
    ``task_timeout`` and ``task_error`` plans reach this transport
    unchanged.
    """
    import traceback

    try:
        fn, index, task = pickle.loads(payload)
    except BaseException as exc:  # the unit names something we cannot import
        body = pickle.dumps(
            ("err_str", f"worker cannot deserialize unit: "
             f"{type(exc).__name__}: {exc}"),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return seal_payload(body), None
    # Chaos hook: the worker keeps computing this unit but its
    # heartbeats go dark for ``sleep`` seconds — modeled as a stalled
    # beat thread plus an equally long compute, so the coordinator must
    # expire the lease and re-dispatch while the answer is still coming.
    spec = faults.should_fire("heartbeat_loss", task_index=index)
    if spec is not None and state is not None:
        state.suppress_until = max(
            state.suppress_until, time.monotonic() + spec.sleep
        )
        time.sleep(spec.sleep)
    try:
        value = _invoke(fn, index, task)
    except BaseException as exc:  # noqa: BLE001 - errors ride the channel
        try:
            body = pickle.dumps(("err", exc), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            body = pickle.dumps(
                ("err_str",
                 "".join(traceback.format_exception(type(exc), exc,
                                                    exc.__traceback__))),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
    else:
        try:
            body = pickle.dumps(("ok", value), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            body = pickle.dumps(
                ("unpicklable", f"{type(exc).__name__}: {exc}"),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
    return seal_payload(body), index


def run_worker(
    coordinator: str,
    token: str | None = None,
    poll: float = 0.25,
    grace: float = 30.0,
    max_units: int | None = None,
) -> int:
    """The worker loop: register, lease, execute, deliver, heartbeat.

    Exits 0 after a clean stop (``max_units`` reached), 1 when the
    coordinator stays unreachable for ``grace`` seconds, and 2 when
    registration is refused (bad token or environment mismatch).
    """
    if token is None:
        token = (
            os.environ.get("REPRO_REMOTE_TOKEN")
            or os.environ.get("REPRO_SERVE_TOKEN")
            or None
        )
    client = _CoordinatorClient(coordinator, token)
    worker_id = f"{socket.gethostname()}-{os.getpid()}-{os.urandom(3).hex()}"
    state = _WorkerState()

    def register() -> float | None:
        """Attempt registration; heartbeat interval on success."""
        status, answer = client.post(
            "/v1/fleet/register",
            {"worker": worker_id, "fingerprint": environment_fingerprint()},
        )
        if status == 200:
            return float(answer.get("heartbeat", 5.0))
        raise WorkerRejectedError(
            f"coordinator refused registration ({status}): "
            f"{answer.get('error', 'unknown reason')}"
        )

    deadline = time.monotonic() + grace
    interval = None
    while interval is None:
        try:
            interval = register()
        except (urllib.error.URLError, ConnectionError, OSError):
            if time.monotonic() >= deadline:
                print(
                    f"worker {worker_id}: coordinator {coordinator} unreachable "
                    f"for {grace:g}s; giving up",
                    file=sys.stderr,
                )
                return 1
            time.sleep(min(0.2, poll))
        except WorkerRejectedError as exc:
            print(f"worker {worker_id}: {exc}", file=sys.stderr)
            return 2

    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(client, worker_id, interval, state),
        name="repro-worker-heartbeat",
        daemon=True,
    )
    beat.start()
    print(f"worker {worker_id}: registered with {coordinator}", flush=True)

    executed = 0
    last_contact = time.monotonic()
    try:
        while True:
            if state.suppressed():
                time.sleep(poll)
                continue
            try:
                status, answer = client.post("/v1/fleet/lease", {"worker": worker_id})
            except (urllib.error.URLError, ConnectionError, OSError):
                if time.monotonic() - last_contact >= grace:
                    print(
                        f"worker {worker_id}: lost the coordinator for "
                        f"{grace:g}s; exiting",
                        file=sys.stderr,
                    )
                    return 1
                time.sleep(poll)
                continue
            last_contact = time.monotonic()
            if status == 410:
                # The coordinator restarted (or evicted us): re-register.
                try:
                    register()
                except WorkerRejectedError as exc:
                    print(f"worker {worker_id}: {exc}", file=sys.stderr)
                    return 2
                except (urllib.error.URLError, ConnectionError, OSError):
                    pass
                continue
            unit = (answer or {}).get("unit")
            if not unit:
                time.sleep(poll)
                continue
            payload = unseal_payload(base64.b64decode(unit.get("payload", "")))
            if payload is None:
                # A torn unit must be reported, never deserialized.
                frame = seal_payload(pickle.dumps(
                    ("err_str", "task unit failed its integrity check"),
                    protocol=pickle.HIGHEST_PROTOCOL,
                ))
                index = None
            else:
                frame, index = _execute_unit(payload, state)
            # Chaos hook: deliver late, fully partitioned in between —
            # no heartbeats, no result — so the lease expires and the
            # re-dispatched replacement races this straggler.
            spec = (
                faults.should_fire("worker_partition", task_index=index)
                if index is not None
                else None
            )
            if spec is not None:
                state.suppress_until = max(
                    state.suppress_until, time.monotonic() + spec.sleep
                )
                time.sleep(spec.sleep)
            for attempt in range(3):
                try:
                    client.post(
                        "/v1/fleet/result",
                        {
                            "worker": worker_id,
                            "unit": unit.get("id"),
                            "frame": base64.b64encode(frame).decode("ascii"),
                        },
                    )
                    break
                except (urllib.error.URLError, ConnectionError, OSError):
                    # Undeliverable results are the coordinator's
                    # problem: the lease expires and the unit re-runs.
                    time.sleep(min(0.2 * (attempt + 1), 1.0))
            executed += 1
            if max_units is not None and executed >= max_units:
                return 0
    finally:
        state.stop.set()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="join a repro fleet: pull sealed task units from a "
        "coordinator under lease-based assignment",
    )
    parser.add_argument(
        "--coordinator", required=True,
        help="coordinator base URL (printed by 'repro serve --transport remote')",
    )
    parser.add_argument(
        "--token", default=None,
        help="fleet bearer token (default $REPRO_REMOTE_TOKEN, "
        "else $REPRO_SERVE_TOKEN)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.25,
        help="seconds between lease polls when idle",
    )
    parser.add_argument(
        "--grace", type=float, default=30.0,
        help="seconds of coordinator unreachability before exiting",
    )
    parser.add_argument(
        "--max-units", type=int, default=None,
        help="exit after executing this many units (default: run forever)",
    )
    args = parser.parse_args(argv)
    return run_worker(
        args.coordinator,
        token=args.token,
        poll=args.poll,
        grace=args.grace,
        max_units=args.max_units,
    )


if __name__ == "__main__":
    raise SystemExit(main())
