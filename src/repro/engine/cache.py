"""Content-addressed result cache for solver artifacts.

Ding & Hillston's treatment of the numerical representation of a
stochastic process algebra model as a first-class artifact motivates
this layer: a derived state space, an aggregated generator, or a solved
distribution is fully determined by (model source, solver name, solver
parameters), so identical requests can be served from a cache without
re-deriving or re-solving — the backbone of bit-for-bit reproducible
re-runs of published experiments.

Keys are canonical SHA-256 hashes computed structurally: dataclasses
hash by qualified type name plus their compared fields, mappings and
sets are order-insensitive, NumPy arrays hash dtype/shape/contents, and
sparse matrices hash their canonical CSR form.  Anything the encoder
does not understand raises :class:`Uncacheable` and the computation
simply runs uncached — caching is always best-effort.

Values are stored as pickle bytes (in-memory LRU, plus an optional
on-disk layer under ``$REPRO_CACHE_DIR``) and unpickled on every hit so
callers always receive a private copy they may mutate freely.

Environment knobs::

    REPRO_CACHE=off       disable caching entirely
    REPRO_CACHE_DIR=path  enable the on-disk layer
    REPRO_CACHE_SIZE=n    in-memory LRU capacity (default 256 entries)
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import pickle
import struct
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.engine import faults
from repro.engine.metrics import get_registry

__all__ = [
    "Uncacheable",
    "ResultCache",
    "canonical_key",
    "cached",
    "get_cache",
    "configure_cache",
    "cache_disabled",
    "cache_override",
    "seal_payload",
    "unseal_payload",
    "unseal_payload_env",
]


class Uncacheable(TypeError):
    """Raised when a value has no canonical content hash."""


_MISS = object()


# ---------------------------------------------------------------------------
# Canonical hashing
# ---------------------------------------------------------------------------

def _update(h, obj) -> None:
    """Feed a type-tagged canonical encoding of ``obj`` into hash ``h``."""
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):
        h.update(b"B1;" if obj else b"B0;")
    elif isinstance(obj, int):
        h.update(b"I%d;" % obj)
    elif isinstance(obj, float):
        h.update(b"F" + struct.pack("<d", obj) + b";")
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        h.update(b"S%d:" % len(raw) + raw + b";")
    elif isinstance(obj, bytes):
        h.update(b"Y%d:" % len(obj) + obj + b";")
    elif isinstance(obj, np.generic):
        _update(h, obj.item())
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"A" + arr.dtype.str.encode() + repr(arr.shape).encode() + b":")
        h.update(arr.tobytes())
        h.update(b";")
    elif sp.issparse(obj):
        m = obj.tocsr()
        if not m.has_sorted_indices:
            m = m.copy()
            m.sort_indices()
        h.update(b"M" + repr(m.shape).encode() + b":")
        _update(h, m.indptr)
        _update(h, m.indices)
        _update(h, m.data)
        h.update(b";")
    elif isinstance(obj, (tuple, list)):
        h.update(b"L%d:" % len(obj))
        for item in obj:
            _update(h, item)
        h.update(b";")
    elif isinstance(obj, (set, frozenset)):
        h.update(b"E%d:" % len(obj))
        for digest in sorted(_digest(item) for item in obj):
            h.update(digest)
        h.update(b";")
    elif isinstance(obj, dict):
        h.update(b"D%d:" % len(obj))
        entries = sorted((_digest(k), v) for k, v in obj.items())
        for key_digest, value in entries:
            h.update(key_digest)
            _update(h, value)
        h.update(b";")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        tag = f"{type(obj).__module__}.{type(obj).__qualname__}"
        h.update(b"O" + tag.encode() + b":")
        for f in dataclasses.fields(obj):
            if not f.compare:
                # Derived memo fields (e.g. Model._rates) are excluded
                # from equality and therefore from the content hash.
                continue
            h.update(f.name.encode() + b"=")
            _update(h, getattr(obj, f.name))
        h.update(b";")
    else:
        raise Uncacheable(
            f"no canonical content hash for {type(obj).__module__}."
            f"{type(obj).__qualname__}"
        )


def _digest(obj) -> bytes:
    h = hashlib.sha256()
    _update(h, obj)
    return h.digest()


def canonical_key(namespace: str, *parts) -> str:
    """Content-addressed cache key: ``namespace-<sha256 of parts>``.

    Raises
    ------
    Uncacheable
        If any part contains a value without a canonical encoding.
    """
    h = hashlib.sha256()
    h.update(namespace.encode("utf-8") + b"\x00")
    for part in parts:
        _update(h, part)
    return f"{namespace}-{h.hexdigest()}"


# ---------------------------------------------------------------------------
# Integrity trailer
# ---------------------------------------------------------------------------

_LEGACY_MAGIC = b"RPRO1"
_PAYLOAD_MAGIC = b"RPRO2"
_LEGACY_TRAILER_LEN = 32 + len(_LEGACY_MAGIC)
# v2 trailer: sha256(payload + env + env_len) | env_len (uint32 LE) | magic
_TRAILER_LEN = 32 + 4 + len(_PAYLOAD_MAGIC)


def _current_env_blob() -> bytes:
    from repro.engine.environment import environment_fingerprint

    return json.dumps(environment_fingerprint(), sort_keys=True).encode("utf-8")


def seal_payload(payload: bytes, env: bytes | None = None) -> bytes:
    """Append an environment-stamped SHA-256 integrity trailer.

    Disk-cache entries and ensemble checkpoints are written through
    this, so a torn write (power loss, full disk, killed process) is
    detected on read instead of surfacing as a pickle error — or worse,
    silently deserializing garbage.  The trailer also seals the writing
    process's environment fingerprint (python/numpy/scipy versions), so
    an entry produced under a different numerical stack can be
    quarantined instead of silently served (``unseal_payload_env``).
    """
    if env is None:
        env = _current_env_blob()
    body = payload + env + struct.pack("<I", len(env))
    return body + hashlib.sha256(body).digest() + _PAYLOAD_MAGIC


def unseal_payload_env(blob: bytes) -> tuple[bytes, dict | None] | None:
    """Verify a sealed blob; return ``(payload, env)`` or ``None``.

    ``env`` is the writer's environment fingerprint, or ``None`` for
    legacy (pre-fingerprint) trailers whose environment is unknown —
    callers that care about environment identity must treat unknown as
    a mismatch.  Returns ``None`` outright when the blob is torn,
    truncated or tampered with.
    """
    if blob.endswith(_PAYLOAD_MAGIC):
        if len(blob) < _TRAILER_LEN:
            return None
        len_bytes = blob[-_TRAILER_LEN : -_TRAILER_LEN + 4]
        digest = blob[-(32 + len(_PAYLOAD_MAGIC)) : -len(_PAYLOAD_MAGIC)]
        (env_len,) = struct.unpack("<I", len_bytes)
        if len(blob) < _TRAILER_LEN + env_len:
            return None
        env_raw = blob[-_TRAILER_LEN - env_len : -_TRAILER_LEN]
        payload = blob[: -_TRAILER_LEN - env_len]
        if hashlib.sha256(payload + env_raw + len_bytes).digest() != digest:
            return None
        try:
            env = json.loads(env_raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        return payload, env if isinstance(env, dict) else None
    if blob.endswith(_LEGACY_MAGIC):
        # Pre-fingerprint trailer: integrity-checkable, environment unknown.
        if len(blob) < _LEGACY_TRAILER_LEN:
            return None
        payload = blob[: -_LEGACY_TRAILER_LEN]
        digest = blob[-_LEGACY_TRAILER_LEN : -len(_LEGACY_MAGIC)]
        if hashlib.sha256(payload).digest() != digest:
            return None
        return payload, None
    return None


def unseal_payload(blob: bytes) -> bytes | None:
    """Verify and strip the integrity trailer; ``None`` if corrupt.

    Integrity only — use :func:`unseal_payload_env` when the writer's
    environment matters (the disk cache does).
    """
    unsealed = unseal_payload_env(blob)
    return None if unsealed is None else unsealed[0]


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------

class ResultCache:
    """In-memory LRU of pickled results with an optional on-disk layer.

    Hits always unpickle a fresh copy, so cached results can never be
    corrupted by callers mutating what they were handed back.
    """

    def __init__(
        self,
        max_entries: int = 256,
        disk_dir: str | os.PathLike | None = None,
        enabled: bool = True,
    ) -> None:
        if max_entries < 1:
            raise ValueError("cache needs at least one entry of capacity")
        self._lock = threading.RLock()
        self._mem: OrderedDict[str, bytes] = OrderedDict()
        self._tmp_counter = itertools.count()
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self.enabled = enabled

    # -- storage ------------------------------------------------------------

    def get(self, key: str):
        """Return the cached value for ``key`` or the module-private miss
        sentinel; counts ``cache.hit`` / ``cache.miss`` metrics."""
        reg = get_registry()
        with self._lock:
            payload = self._mem.get(key)
            if payload is not None:
                self._mem.move_to_end(key)
        if payload is None and self.disk_dir is not None:
            payload = self._read_disk(key)
            if payload is not None:
                reg.increment("cache.disk_hit")
                with self._lock:
                    self._store_mem(key, payload)
        if payload is None:
            reg.increment("cache.miss")
            return _MISS
        try:
            value = pickle.loads(payload)
        except Exception:
            reg.increment("cache.corrupt_entries")
            with self._lock:
                self._mem.pop(key, None)
            reg.increment("cache.miss")
            return _MISS
        reg.increment("cache.hit")
        return value

    def _read_disk(self, key: str) -> bytes | None:
        """Read a disk entry, verifying its integrity + environment seal.

        A corrupt or truncated entry is quarantined — renamed to
        ``<key>.pkl.<pid>.corrupt`` for post-mortem inspection — counted,
        and treated as a miss.  An intact entry written under a
        *different* environment fingerprint (or a legacy pre-fingerprint
        trailer whose environment is unknown) is likewise quarantined as
        ``<key>.pkl.<pid>.envmismatch`` and counted under
        ``cache.env_mismatch``: a float produced by another numpy/scipy
        build is not evidence about this one.
        """
        path = self._disk_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        unsealed = unseal_payload_env(blob)
        if unsealed is None:
            get_registry().increment("cache.corrupt_entries")
            self._quarantine(path, "corrupt")
            return None
        payload, env = unsealed
        current = json.loads(_current_env_blob().decode("utf-8"))
        if env != current:
            get_registry().increment("cache.env_mismatch")
            self._quarantine(path, "envmismatch")
            return None
        return payload

    @staticmethod
    def _quarantine(path: Path, reason: str) -> None:
        try:
            path.replace(path.with_name(f"{path.name}.{os.getpid()}.{reason}"))
        except OSError:
            pass

    def put(self, key: str, value) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._store_mem(key, payload)
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            path = self._disk_path(key)
            blob = seal_payload(payload)
            if faults.should_fire("cache_corrupt") is not None:
                blob = blob[: max(1, len(blob) // 2)]  # simulate a torn write
            # Unique tmp name per process + call: two processes writing
            # the same key must never replace() each other's half-written
            # tmp file into place.
            tmp = path.with_name(
                f"{path.name}.{os.getpid()}-{next(self._tmp_counter)}.tmp"
            )
            try:
                tmp.write_bytes(blob)
                tmp.replace(path)  # atomic on POSIX
            except OSError:
                tmp.unlink(missing_ok=True)

    def _store_mem(self, key: str, payload: bytes) -> None:
        self._mem[key] = payload
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    def _disk_path(self, key: str) -> Path:
        return self.disk_dir / f"{key}.pkl"

    # -- maintenance --------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._mem.clear()
        if disk and self.disk_dir is not None and self.disk_dir.is_dir():
            for pattern in ("*.pkl", "*.corrupt", "*.envmismatch", "*.tmp"):
                for path in self.disk_dir.glob(pattern):
                    path.unlink(missing_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def stats(self) -> dict:
        reg = get_registry()
        return {
            "entries": len(self),
            "hits": reg.counter("cache.hit"),
            "misses": reg.counter("cache.miss"),
            "disk_hits": reg.counter("cache.disk_hit"),
            "corrupt": reg.counter("cache.corrupt_entries"),
            "env_mismatch": reg.counter("cache.env_mismatch"),
            "enabled": self.enabled,
        }


def _cache_from_env() -> ResultCache:
    enabled = os.environ.get("REPRO_CACHE", "on").lower() not in ("off", "0", "false")
    size = int(os.environ.get("REPRO_CACHE_SIZE", "256"))
    return ResultCache(
        max_entries=size,
        disk_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        enabled=enabled,
    )


_CACHE = _cache_from_env()


def get_cache() -> ResultCache:
    return _CACHE


_UNSET = object()


def configure_cache(
    max_entries: int | None = None,
    disk_dir: str | os.PathLike | None = _UNSET,
    enabled: bool | None = None,
) -> ResultCache:
    """Adjust the process-wide cache in place; returns it.

    Passing ``disk_dir=None`` explicitly *disables* the on-disk layer
    (leaving the argument out keeps the current setting).
    """
    if max_entries is not None:
        if max_entries < 1:
            raise ValueError("cache needs at least one entry of capacity")
        _CACHE.max_entries = max_entries
    if disk_dir is not _UNSET:
        _CACHE.disk_dir = Path(disk_dir) if disk_dir is not None else None
    if enabled is not None:
        _CACHE.enabled = enabled
    return _CACHE


@contextmanager
def cache_override(enabled: bool):
    """Temporarily force the cache on or off."""
    prev = _CACHE.enabled
    _CACHE.enabled = enabled
    try:
        yield _CACHE
    finally:
        _CACHE.enabled = prev


def cache_disabled():
    """Context manager: run a block with caching off (benchmarks use this
    so repeated solves measure the solver, not the cache)."""
    return cache_override(False)


# ---------------------------------------------------------------------------
# Memoization helper used by the solver entry points
# ---------------------------------------------------------------------------

def cached(namespace: str, parts: tuple, compute):
    """Serve ``compute()`` through the content-addressed cache.

    Returns ``(value, status)`` with status one of ``"hit"``, ``"miss"``,
    ``"off"`` (cache disabled) or ``"uncacheable"`` (no canonical key, or
    the result itself cannot be pickled).  Never raises on cache
    machinery problems — the computation always wins.
    """
    reg = get_registry()
    if not _CACHE.enabled:
        return compute(), "off"
    try:
        key = canonical_key(namespace, *parts)
    except Uncacheable:
        reg.increment("cache.uncacheable")
        return compute(), "uncacheable"
    value = _CACHE.get(key)
    if value is not _MISS:
        reg.increment(f"{namespace}.cache_hit")
        return value, "hit"
    value = compute()
    reg.increment(f"{namespace}.cache_miss")
    try:
        _CACHE.put(key, value)
    except (pickle.PicklingError, TypeError, AttributeError):
        reg.increment("cache.unstorable")
        return value, "uncacheable"
    return value, "miss"
