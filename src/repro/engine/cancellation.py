"""Cooperative cancellation and deadlines for engine workloads.

The job service (:mod:`repro.service`) must be able to abandon a solve —
the tenant cancelled the job, or its deadline passed — without killing
the serving process or leaking worker children.  A hard kill is the
wrong tool inside a library; instead the engine exposes *cooperative*
cancellation: a :class:`CancelScope` is installed around a workload and
every fan-out layer checks it at task-unit boundaries::

    scope = CancelScope(deadline_seconds=30.0)
    with cancel_scope(scope):
        ens = ssa_ensemble(model, grid, n_runs=10_000)   # cancellable

    # ... from any other thread:
    scope.cancel()          # the workload raises JobCancelledError
                            # at the next chunk boundary

Granularity is the task unit (an ensemble chunk, one machine's CDF, a
sweep point): a single monolithic linear solve is not interruptible —
documented, not hidden.  Checkpointed batches interact safely with
cancellation: chunks completed before the cancellation are already
persisted, so a later retry of the same job *resumes* instead of
restarting (bit-identically, by the checkpoint contract).

Scopes are thread-local and nest; :func:`current_scope` returns the
innermost active scope, or a never-cancelled null scope so callers can
check unconditionally.  Transports that drive worker processes from
helper threads capture the submitting thread's scope explicitly.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.errors import JobCancelledError

__all__ = [
    "CancelScope",
    "cancel_scope",
    "current_scope",
]


class CancelScope:
    """A cancellation token with an optional wall-clock deadline.

    ``reason`` distinguishes an explicit :meth:`cancel` (``"cancelled"``)
    from a deadline overrun (``"deadline"``) so callers can map the two
    to different outcomes (a cancelled job vs. an expired one).
    """

    #: Null scopes override this: a check against an inactive scope is
    #: a constant-time no-op and transports may skip poll loops for it.
    active = True

    #: Class-level default so deadline queries work on scopes that skip
    #: ``__init__`` (the null scope has neither event nor deadline).
    _deadline = None

    def __init__(self, deadline_seconds: float | None = None):
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {deadline_seconds}"
            )
        self._event = threading.Event()
        self._deadline = (
            None
            if deadline_seconds is None
            else time.monotonic() + deadline_seconds
        )

    def cancel(self) -> None:
        """Request cancellation (idempotent, callable from any thread)."""
        self._event.set()

    @property
    def reason(self) -> str | None:
        """``"cancelled"``, ``"deadline"``, or ``None`` when still live."""
        if self._event.is_set():
            return "cancelled"
        if self._deadline is not None and time.monotonic() >= self._deadline:
            return "deadline"
        return None

    def cancelled(self) -> bool:
        return self.reason is not None

    def remaining(self) -> float | None:
        """Seconds until the deadline (``None`` when there is none).

        Clamped at zero once the deadline has passed.  Lease-granting
        layers use this to never hand out a lease that outlives the
        scope that submitted the work.
        """
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def raise_if_cancelled(self) -> None:
        """Raise :class:`~repro.errors.JobCancelledError` once cancelled."""
        reason = self.reason
        if reason == "cancelled":
            raise JobCancelledError("work was cancelled", reason=reason)
        if reason == "deadline":
            raise JobCancelledError(
                "work exceeded its deadline", reason=reason
            )


class _NullScope(CancelScope):
    """The default scope: never cancelled, free to check."""

    active = False

    def __init__(self):  # no event, no deadline
        pass

    def cancel(self) -> None:  # pragma: no cover - guarding misuse
        raise RuntimeError("the null cancel scope cannot be cancelled")

    @property
    def reason(self) -> str | None:
        return None


NULL_SCOPE = _NullScope()

_TLS = threading.local()


def current_scope() -> CancelScope:
    """The innermost active scope on this thread (never ``None``)."""
    stack = getattr(_TLS, "stack", None)
    return stack[-1] if stack else NULL_SCOPE


@contextmanager
def cancel_scope(scope: CancelScope | None = None):
    """Install ``scope`` (or a fresh one) for the enclosed block.

    Yields the installed scope.  Engine fan-out entered inside the block
    checks it at task boundaries; the block itself may also call
    ``scope.raise_if_cancelled()`` at convenient points.
    """
    if scope is None:
        scope = CancelScope()
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    stack.append(scope)
    try:
        yield scope
    finally:
        stack.pop()
