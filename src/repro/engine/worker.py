"""Fresh-process task worker: one sealed task unit in, one sealed result out.

This is the receiving end of
:class:`repro.engine.transport.SubprocessWorkerTransport` — the
prototype for remote workers.  The protocol is deliberately the
smallest thing that preserves the engine's guarantees:

* stdin carries one integrity-sealed pickle of ``(fn, index, task)``
  (the same sealing as disk-cache entries, so a truncated pipe is
  detected, not deserialized);
* stdout carries one integrity-sealed pickle of ``("ok", value)`` or
  ``("err", exception)`` — nothing else.  The worker re-points file
  descriptor 1 at stderr *before* running user code, so a task that
  prints cannot corrupt the result frame;
* the task runs through the same fault-injection shim
  (:func:`repro.engine.resilience._invoke`) as pool workers, so the
  chaos harness (``$REPRO_FAULT_PLAN``) exercises this transport
  unchanged: a planned ``worker_crash`` kills this process with exit
  code 70, a planned ``task_timeout`` stalls it into the parent's
  deadline, a planned ``task_error`` raises and rides back as
  ``("err", ...)``.

Exit codes: 0 = result frame written (even for ``("err", ...)``),
66 = the task unit itself failed its integrity check, 70 = injected
crash.  Anything else is an uncontrolled death; the parent retries
under its resilience policy either way.
"""

from __future__ import annotations

import os
import pickle
import sys
import traceback

__all__ = ["main"]

_CORRUPT_TASK_EXIT = 66


def main() -> int:
    # Claim the result channel before any user code runs: fd 1 is
    # duplicated for the sealed frame, then re-pointed at stderr so
    # ``print`` inside a task lands in the diagnostic stream instead of
    # the protocol stream.
    result_fd = os.dup(1)
    os.dup2(2, 1)
    sys.stdout = sys.stderr

    from repro.engine.cache import seal_payload, unseal_payload
    from repro.engine.resilience import _invoke

    blob = sys.stdin.buffer.read()
    payload = unseal_payload(blob)
    if payload is None:
        return _CORRUPT_TASK_EXIT
    fn, index, task = pickle.loads(payload)
    try:
        value = _invoke(fn, index, task)
    except BaseException as exc:  # noqa: BLE001 - errors ride the channel
        try:
            body = pickle.dumps(("err", exc), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # The exception itself does not pickle; send its traceback
            # so the parent can surface it instead of dying frameless.
            body = pickle.dumps(
                ("err_str",
                 "".join(traceback.format_exception(type(exc), exc,
                                                    exc.__traceback__))),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
    else:
        try:
            body = pickle.dumps(("ok", value), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            # The *result* does not pickle — tell the parent so it can
            # degrade that task to in-parent execution, mirroring the
            # pool transport's pickle fallback.
            body = pickle.dumps(
                ("unpicklable", f"{type(exc).__name__}: {exc}"),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
    with os.fdopen(result_fd, "wb") as out:
        out.write(seal_payload(body))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
