"""Fault-tolerant execution: supervised pools, retries, checkpoints.

The executor's original parallel path was one ``pool.map`` — a single
crashed worker, one hung task, or one unpicklable payload killed the
whole batch.  This module supplies the supervised replacement used by
:func:`repro.engine.executor.run_tasks`:

* **Supervised submit/collect loop** (:func:`supervised_map`): bounded
  in-flight submission (one task per worker, so per-task deadlines
  measure *run* time, not queue time), per-task timeout, bounded retry
  with exponential backoff, ``BrokenProcessPool`` recovery (terminate,
  rebuild, resubmit only unfinished work), and last-resort degradation
  to in-parent sequential execution when the pool keeps dying.
* **Checkpoint store** (:class:`CheckpointStore`): per-task partial
  results persisted under ``$REPRO_CHECKPOINT_DIR`` keyed by the same
  content hash as the result cache, so an interrupted ensemble resumes
  from its completed chunks.  Entries carry the cache's SHA-256
  integrity trailer; a torn chunk is quarantined and recomputed.

Determinism is preserved by construction: a retried task re-runs the
*same* ``(fn, task)`` pair — seeds were spawned per task up front — and
results are always returned (and reduced by callers) in task order, so
a batch that survived a crash, a timeout, and a pool rebuild is
bit-identical to an undisturbed sequential run.

Policy knobs resolve, in order: explicit ``parallel(...)`` arguments,
then the environment (``REPRO_TASK_TIMEOUT``, ``REPRO_MAX_RETRIES``,
``REPRO_RETRY_BACKOFF``), then the defaults below.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import time
import warnings
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.engine import faults
from repro.engine.cancellation import current_scope
from repro.engine.metrics import get_registry
from repro.errors import TaskTimeoutError

__all__ = [
    "ResiliencePolicy",
    "resolve_policy",
    "supervised_map",
    "CheckpointStore",
    "configure_checkpoints",
    "get_checkpoint_store",
]


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the supervised loop reacts to failing tasks and pools.

    Attributes
    ----------
    task_timeout:
        Per-task wall-clock deadline in seconds (``None`` = no limit).
        Measured from submission; the loop keeps at most one task per
        worker in flight, so queueing time is not charged to the task.
    max_retries:
        How many times one task may be retried after a failure or a
        timeout before the batch gives up on it.
    backoff_base / backoff_cap:
        Exponential-backoff sleep before retry ``k`` is
        ``min(cap, base * 2**(k-1))``; base 0 disables the sleep.
    max_pool_rebuilds:
        How many times a broken/wedged pool is rebuilt before the
        remaining tasks degrade to sequential in-parent execution.
    """

    task_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_pool_rebuilds: int = 3

    def __post_init__(self):
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


def _env_number(name: str, default, convert):
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return convert(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={raw!r}; using default {default!r}",
            RuntimeWarning,
            stacklevel=3,
        )
        return default


def resolve_policy(
    task_timeout: float | None = None,
    max_retries: int | None = None,
) -> ResiliencePolicy:
    """Build the effective policy from arguments, environment, defaults."""
    if task_timeout is None:
        task_timeout = _env_number("REPRO_TASK_TIMEOUT", None, float)
        if task_timeout is not None and task_timeout <= 0:
            task_timeout = None
    if max_retries is None:
        max_retries = _env_number("REPRO_MAX_RETRIES", 2, int)
        if max_retries < 0:
            max_retries = 0
    backoff = _env_number("REPRO_RETRY_BACKOFF", 0.05, float)
    return ResiliencePolicy(
        task_timeout=task_timeout,
        max_retries=max_retries,
        backoff_base=max(0.0, backoff),
    )


# ---------------------------------------------------------------------------
# The supervised loop
# ---------------------------------------------------------------------------

def _invoke(fn: Callable, index: int, task):
    """Worker-side shim: enact planned faults, then run the task."""
    spec = faults.should_fire("worker_crash", task_index=index)
    if spec is not None:
        os._exit(70)
    spec = faults.should_fire("task_timeout", task_index=index)
    if spec is not None:
        time.sleep(spec.sleep)
    spec = faults.should_fire("task_error", task_index=index)
    if spec is not None:
        raise faults.InjectedFaultError(f"injected task error on task {index}")
    return fn(task)


def _is_pickle_error(exc: BaseException) -> bool:
    if isinstance(exc, pickle.PicklingError):
        return True
    return isinstance(exc, (TypeError, AttributeError)) and "pickle" in str(exc).lower()


def _terminate(pool: ProcessPoolExecutor) -> None:
    """Abandon a pool without waiting for wedged or dying workers."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in (getattr(pool, "_processes", None) or {}).values():
        try:
            proc.terminate()
        except Exception:
            pass


def supervised_map(
    fn: Callable,
    tasks: Sequence,
    workers: int,
    policy: ResiliencePolicy | None = None,
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """Map ``fn`` over ``tasks`` on a supervised process pool.

    Returns results in task order.  ``on_result(index, value)`` fires as
    each task completes (in completion order) — the checkpointing hook.

    Failure handling, in escalating order:

    * a task raising an exception is retried up to ``max_retries`` times
      (with exponential backoff), then the exception propagates;
    * a task whose payload cannot be pickled runs in-parent instead
      (counted as ``engine.pickle_fallback``);
    * a task exceeding ``task_timeout`` abandons the pool, which is
      rebuilt; the task is retried and, once its retry budget is
      exhausted, raises :class:`~repro.errors.TaskTimeoutError` (a hung
      task would hang the parent too — degradation cannot help);
    * a broken pool (crashed worker) is rebuilt and only unfinished
      tasks are resubmitted, up to ``max_pool_rebuilds`` times, after
      which the remainder runs sequentially in the parent.
    """
    if policy is None:
        policy = resolve_policy()
    reg = get_registry()
    scope = current_scope()
    n = len(tasks)
    results: dict[int, object] = {}
    attempts = [0] * n
    sequential: set[int] = set()
    rebuilds = 0

    def record(index: int, value) -> None:
        results[index] = value
        if on_result is not None:
            on_result(index, value)

    def backoff(attempt: int) -> None:
        if policy.backoff_base > 0:
            time.sleep(min(policy.backoff_cap, policy.backoff_base * 2 ** max(0, attempt - 1)))

    pool = ProcessPoolExecutor(max_workers=workers)
    to_run: deque[int] = deque(range(n))
    pending: dict = {}
    deadlines: dict = {}
    try:
        while to_run or pending:
            # Cooperative cancellation: checked between rounds, never
            # inside on_result (whose exceptions the retry logic would
            # absorb as a task failure).  Already-completed chunks were
            # checkpointed by the caller, so a retried job resumes.
            if scope.cancelled():
                _terminate(pool)
                scope.raise_if_cancelled()
            broken = False
            # Bounded in-flight submission: one task per worker, so a
            # deadline measures execution, not time spent queued.
            while to_run and len(pending) < workers:
                index = to_run.popleft()
                try:
                    future = pool.submit(_invoke, fn, index, tasks[index])
                except (BrokenProcessPool, RuntimeError):
                    to_run.appendleft(index)
                    broken = True
                    break
                pending[future] = index
                if policy.task_timeout is not None:
                    deadlines[future] = time.monotonic() + policy.task_timeout
            if pending and not broken:
                timeout = None
                if deadlines:
                    timeout = max(0.0, min(deadlines.values()) - time.monotonic())
                if scope.active:
                    # Wake periodically so a cancellation interrupts the
                    # wait instead of lingering until a task completes.
                    timeout = 0.1 if timeout is None else min(timeout, 0.1)
                done, _ = wait(set(pending), timeout=timeout, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    deadlines.pop(future, None)
                    try:
                        record(index, future.result())
                    except BrokenProcessPool:
                        broken = True
                        to_run.append(index)
                    except faults.InjectedFaultError as exc:
                        attempts[index] += 1
                        if attempts[index] > policy.max_retries:
                            raise
                        reg.increment("engine.retries")
                        backoff(attempts[index])
                        to_run.append(index)
                    except Exception as exc:
                        if _is_pickle_error(exc):
                            reg.increment("engine.pickle_fallback")
                            sequential.add(index)
                            continue
                        attempts[index] += 1
                        if attempts[index] > policy.max_retries:
                            raise
                        reg.increment("engine.retries")
                        backoff(attempts[index])
                        to_run.append(index)
                # Expire overdue tasks: the worker is wedged (or just too
                # slow); the whole pool is abandoned below because a
                # future of a ProcessPoolExecutor cannot be cancelled
                # once running.
                now = time.monotonic()
                overdue = [f for f, dl in deadlines.items() if now >= dl]
                for future in overdue:
                    index = pending.pop(future)
                    deadlines.pop(future)
                    attempts[index] += 1
                    reg.increment("engine.task_timeouts")
                    if attempts[index] > policy.max_retries:
                        _terminate(pool)
                        raise TaskTimeoutError(
                            f"task {index} exceeded its {policy.task_timeout:g}s "
                            f"deadline on every one of {attempts[index]} attempts"
                        )
                    reg.increment("engine.retries")
                    to_run.append(index)
                if overdue:
                    broken = True
            if broken:
                _terminate(pool)
                rebuilds += 1
                reg.increment("engine.pool_rebuilds")
                unfinished = [
                    i for i in range(n)
                    if i not in results and i not in sequential
                ]
                pending.clear()
                deadlines.clear()
                if rebuilds > policy.max_pool_rebuilds:
                    # The pool keeps dying: degrade the remainder to
                    # sequential in-parent execution, the last resort
                    # that cannot be killed by worker failures.
                    reg.increment("engine.degraded_sequential")
                    sequential.update(unfinished)
                    to_run.clear()
                else:
                    to_run = deque(unfinished)
                    pool = ProcessPoolExecutor(max_workers=workers)
    finally:
        _terminate(pool)
    for index in sorted(sequential):
        if index not in results:
            record(index, fn(tasks[index]))
    return [results[i] for i in range(n)]


# ---------------------------------------------------------------------------
# Checkpoint store
# ---------------------------------------------------------------------------

_CKPT_UNSET = object()
_CHECKPOINT_DIR: object = _CKPT_UNSET


_LAYOUT_NAME = "layout.json"


class CheckpointStore:
    """Per-task partial results on disk, keyed by content hash.

    One directory per batch key; one sealed pickle per completed task
    (``chunk-000042.pkl``).  The payload carries the cache layer's
    SHA-256 integrity trailer, so a partial write from an interrupted
    run is quarantined and recomputed instead of poisoning the resume.

    Alongside the chunks sits a ``layout.json`` recording the batch's
    chunk structure (task count).  :meth:`load` validates it against the
    resuming run: a batch key only hashes the *logical* request
    (model, grid, n_runs, seed), so a chunking-parameter change between
    the interrupted run and the resume would otherwise merge partials
    computed under different chunk boundaries into a silently corrupt
    reduction.  On mismatch the whole batch is discarded with a warning
    (``engine.checkpoint_layout_mismatch``) and recomputed from scratch.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def _dir(self, key: str) -> Path:
        return self.root / key

    def _path(self, key: str, index: int) -> Path:
        return self._dir(key) / f"chunk-{index:06d}.pkl"

    def _validate_layout(self, key: str, n_tasks: int) -> bool:
        """True when the stored chunk layout matches this run's."""
        path = self._dir(key) / _LAYOUT_NAME
        if not path.exists():
            # Legacy batch (pre-layout): nothing to validate against.
            return True
        try:
            stored = json.loads(path.read_text()).get("n_tasks")
        except (OSError, ValueError):
            stored = None
        if stored == n_tasks:
            return True
        warnings.warn(
            f"checkpoint batch {key!r} was written with a different chunk "
            f"layout ({stored!r} tasks, this run has {n_tasks}); discarding "
            "it and recomputing from scratch",
            RuntimeWarning,
            stacklevel=3,
        )
        get_registry().increment("engine.checkpoint_layout_mismatch")
        self.discard(key)
        return False

    def load(self, key: str, n_tasks: int) -> dict[int, object]:
        """All intact completed partials for ``key`` (index -> value)."""
        from repro.engine.cache import unseal_payload

        reg = get_registry()
        done: dict[int, object] = {}
        directory = self._dir(key)
        if not directory.is_dir():
            return done
        if not self._validate_layout(key, n_tasks):
            return done
        for path in sorted(directory.glob("chunk-*.pkl")):
            try:
                index = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if not 0 <= index < n_tasks:
                continue
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            payload = unseal_payload(blob)
            if payload is None:
                reg.increment("engine.checkpoint_corrupt")
                path.unlink(missing_ok=True)
                continue
            try:
                done[index] = pickle.loads(payload)
            except Exception:
                reg.increment("engine.checkpoint_corrupt")
                path.unlink(missing_ok=True)
        return done

    def save(self, key: str, index: int, value, n_tasks: int | None = None) -> None:
        """Persist one completed partial (atomic, integrity-sealed).

        ``n_tasks`` records the batch's chunk layout on first save so a
        later resume can validate it; ``None`` (legacy callers) skips
        the layout record.
        """
        from repro.engine.cache import seal_payload

        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            return
        path = self._path(key, index)
        path.parent.mkdir(parents=True, exist_ok=True)
        if n_tasks is not None:
            layout = path.parent / _LAYOUT_NAME
            if not layout.exists():
                ltmp = layout.with_name(f"{layout.name}.{os.getpid()}.tmp")
                try:
                    ltmp.write_text(json.dumps({"n_tasks": n_tasks}))
                    ltmp.replace(layout)
                except OSError:
                    ltmp.unlink(missing_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(seal_payload(payload))
        tmp.replace(path)
        get_registry().increment("engine.checkpoint_saved")

    def discard(self, key: str) -> None:
        """Drop a batch's checkpoints (it completed, or was abandoned)."""
        shutil.rmtree(self._dir(key), ignore_errors=True)

    def purge_expired(self, ttl_seconds: float) -> int:
        """Drop every batch untouched for ``ttl_seconds`` or longer.

        Abandoned partials — from jobs that crashed and were never
        retried — would otherwise accumulate forever under a long-lived
        service.  A batch's age is its *newest* entry's mtime, so a live
        job that keeps sealing chunks is never purged mid-run.  Returns
        the number of batches dropped (counted as
        ``engine.checkpoint_purged``); a purged job simply falls back to
        a clean run on its next attempt.
        """
        if ttl_seconds < 0:
            raise ValueError(f"ttl_seconds must be >= 0, got {ttl_seconds}")
        if not self.root.is_dir():
            return 0
        cutoff = time.time() - ttl_seconds
        purged = 0
        for directory in self.root.iterdir():
            if not directory.is_dir():
                continue
            try:
                newest = max(
                    (entry.stat().st_mtime for entry in directory.iterdir()),
                    default=directory.stat().st_mtime,
                )
            except OSError:
                continue  # racing a concurrent discard; it wins
            if newest <= cutoff:
                self.discard(directory.name)
                purged += 1
        if purged:
            get_registry().increment("engine.checkpoint_purged", by=purged)
        return purged


def configure_checkpoints(directory: str | os.PathLike | None) -> None:
    """Set (or, with ``None``, disable) the process-wide checkpoint dir,
    overriding ``$REPRO_CHECKPOINT_DIR``."""
    global _CHECKPOINT_DIR
    _CHECKPOINT_DIR = None if directory is None else Path(directory)


def get_checkpoint_store() -> CheckpointStore | None:
    """The active checkpoint store, or ``None`` when checkpointing is off
    (no ``configure_checkpoints`` call and no ``$REPRO_CHECKPOINT_DIR``)."""
    if _CHECKPOINT_DIR is not _CKPT_UNSET:
        return None if _CHECKPOINT_DIR is None else CheckpointStore(_CHECKPOINT_DIR)
    env = os.environ.get("REPRO_CHECKPOINT_DIR")
    return CheckpointStore(env) if env else None
