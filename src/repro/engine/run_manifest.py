"""Self-contained reproducibility manifests for engine runs.

The source paper's contribution is an artifact that *proves* a run is
re-executable elsewhere.  A :class:`RunManifest` is that artifact for
this codebase: everything needed to re-run an analysis bit-for-bit —
the model source (and its hash), the solver capability and parameters,
the full seed spec (root ``SeedSequence`` entropy plus spawn layout),
the chunk structure, the backend requested and the fallback chain
actually taken, the environment fingerprint — plus the digest of the
result actually produced, so a replay can *assert* bit-identity rather
than merely claim it.

Manifests are assembled by the IR registry around every dispatch and by
the batch entry points (makespan CDFs, sweeps), attached to results as
``meta["manifest"]`` and retrievable via :func:`last_manifest`, and are
plain JSON on disk — ``repro replay MANIFEST.json --verify`` re-executes
one (see :mod:`repro.manifest`, which owns the frontend-aware replay).

Determinism of the manifest itself is part of the contract: no
timestamps, hostnames or process ids — two bit-identical runs produce
manifests with equal :meth:`~RunManifest.identity_digest`, and a
replay's manifest matches the original's identity digest exactly.
Observational facts that may legitimately differ between identical runs
(platform, transport, which backend was *requested*, cache status,
diagnostics) are recorded but excluded from the identity digest.

Layering: this module lives in ``engine`` (rank 1) so the IR registry
can assemble manifests; it knows nothing about frontends.  Callers
above supply the model description through :func:`model_context`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.engine.cache import Uncacheable, canonical_key
from repro.engine.environment import environment_fingerprint, platform_info
from repro.errors import ReplayError

__all__ = [
    "MANIFEST_VERSION",
    "RunManifest",
    "model_context",
    "current_model_context",
    "model_descriptor",
    "dataclass_descriptor",
    "last_manifest",
    "set_last_manifest",
    "result_digest",
    "encode_params",
    "decode_params",
    "build_solve_manifest",
    "build_batch_manifest",
    "attach_manifest",
    "load_manifest",
]

MANIFEST_VERSION = 1


# ---------------------------------------------------------------------------
# JSON-safe parameter codec
# ---------------------------------------------------------------------------
#
# Solver parameters must survive manifest -> JSON -> manifest -> solve
# *exactly*: Python's json module round-trips floats via repr, so the
# only values needing help are NumPy arrays and scalars.

def _encode_value(value):
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": value.tolist(),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    if isinstance(value, np.generic):
        return _encode_value(value.item())
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise Uncacheable(
        f"no JSON-safe manifest encoding for {type(value).__name__}"
    )


def _decode_value(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            arr = np.array(value["__ndarray__"], dtype=value["dtype"])
            return arr.reshape(tuple(value["shape"]))
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_params(params: dict) -> dict:
    """Solver parameters as a JSON-safe dict (exact float round-trip)."""
    return {str(k): _encode_value(v) for k, v in params.items()}


def decode_params(params: dict) -> dict:
    """Invert :func:`encode_params` (lists stay lists; solvers accept
    sequences wherever they accept arrays)."""
    return {k: _decode_value(v) for k, v in params.items()}


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------

def result_digest(result) -> str | None:
    """Canonical content digest of a solver result (``None`` when the
    result type has no canonical encoding).

    Built on the cache's structural hashing, so volatile ``meta``
    entries (declared ``compare=False``) never leak into the digest —
    two bit-identical results digest identically however they were
    produced.
    """
    try:
        return canonical_key("result", result)
    except Uncacheable:
        return None


def _digest_of(obj) -> str | None:
    try:
        return canonical_key("manifest", obj)
    except Uncacheable:
        return None


# ---------------------------------------------------------------------------
# Model context (what is being solved, supplied from above)
# ---------------------------------------------------------------------------

_TLS = threading.local()


def model_descriptor(
    formalism: str, source: str, derive_backend: str | None = None
) -> dict:
    """Self-contained model description: formalism + source + hash.

    ``derive_backend`` records a non-default derivation strategy (e.g.
    ``population``) so a replay lowers the source the same way — a
    population-form chain and the explicit chain of the same source are
    different state spaces.
    """
    out = {
        "formalism": formalism,
        "source": source,
        "sha256": hashlib.sha256(source.encode("utf-8")).hexdigest(),
    }
    if derive_backend is not None:
        out["derive_backend"] = derive_backend
    return out


def dataclass_descriptor(obj) -> dict:
    """JSON-safe description of a frozen dataclass (compared fields
    only), tagged with its qualified type — how non-textual model
    objects (mappings, workloads) enter a manifest."""
    fields = {}
    for f in dataclasses.fields(obj):
        if f.compare:
            fields[f.name] = _encode_value(getattr(obj, f.name))
    return {
        "type": f"{type(obj).__module__}.{type(obj).__qualname__}",
        "fields": fields,
    }


@contextmanager
def model_context(descriptor: dict | None):
    """Declare the model being solved for manifests assembled below.

    The registry sits beneath the frontends, so it cannot know what
    source text produced the IR it is dispatching on; callers that do
    know (the CLI, :mod:`repro.manifest`, frontend shims) wrap their
    solve in this.  Without a context, manifests are still assembled
    but are not self-contained (``replayable`` is false).
    """
    prev = getattr(_TLS, "model", None)
    _TLS.model = descriptor
    try:
        yield
    finally:
        _TLS.model = prev


def current_model_context() -> dict | None:
    return getattr(_TLS, "model", None)


def set_last_manifest(manifest: RunManifest | None) -> None:
    _TLS.last = manifest


def last_manifest() -> RunManifest | None:
    """The manifest of the most recent run on this thread — how callers
    reach the manifest of a result that has no ``meta`` dict."""
    return getattr(_TLS, "last", None)


# ---------------------------------------------------------------------------
# The manifest
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunManifest:
    """One run, described completely enough to re-execute and verify.

    All fields hold JSON-safe values (see :func:`encode_params`).
    ``model``/``seed``/``chunks``/``backend``/``diagnostics`` are
    ``None`` when the run has no such aspect.
    """

    kind: str                      #: "solve" | "makespan_cdf" | "sweep"
    capability: str | None         #: registry capability for solves
    model: dict | None             #: model_descriptor / dataclass descriptors
    params: dict                   #: encoded solver parameters
    seed: dict | None              #: root entropy + spawn layout
    chunks: dict | None            #: chunk structure of the fan-out
    backend: dict | None           #: requested / used / chain taken
    cache: str | None              #: cache status of the producing call
    diagnostics: dict | None       #: digest of the diagnostics dict
    environment: dict              #: numerical-stack fingerprint
    platform: dict                 #: observational platform facts
    transport: str | None          #: configured transport (observational)
    result: dict                   #: digest + type of the produced result
    replayable: bool               #: self-contained enough to re-execute
    version: int = MANIFEST_VERSION

    # -- identity -----------------------------------------------------------

    #: Fields two bit-identical runs must agree on.  ``transport``,
    #: ``platform``, the *requested* backend, cache status and
    #: diagnostics are observational: a replay may differ there while
    #: still reproducing the run.
    _IDENTITY_FIELDS = (
        "version", "kind", "capability", "model", "params",
        "seed", "chunks", "environment", "result",
    )

    def identity_digest(self) -> str:
        """SHA-256 over the reproducibility-relevant manifest content."""
        ident = {name: getattr(self, name) for name in self._IDENTITY_FIELDS}
        ident["backend_used"] = (self.backend or {}).get("used")
        blob = json.dumps(ident, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: dict) -> RunManifest:
        if not isinstance(data, dict) or "version" not in data:
            raise ReplayError("not a run manifest (missing 'version')")
        if data["version"] != MANIFEST_VERSION:
            raise ReplayError(
                f"manifest version {data['version']!r} is not supported "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ReplayError(f"manifest has unknown fields: {sorted(unknown)}")
        missing = names - set(data)
        if missing:
            raise ReplayError(f"manifest is missing fields: {sorted(missing)}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> RunManifest:
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ReplayError(f"manifest is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def decoded_params(self) -> dict:
        return decode_params(self.params)


def load_manifest(path) -> RunManifest:
    """Read and validate a manifest JSON file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ReplayError(f"cannot read manifest {path}: {exc}") from exc
    return RunManifest.from_json(text)


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------

def _seed_spec(params: dict, result) -> tuple[dict | None, dict | None]:
    """Seed + chunk structure for seeded ensemble runs.

    The engine's contract assigns the ``i``-th child of
    ``SeedSequence(root)`` to realization ``i`` and reduces fixed-size
    chunks in order, so the spawn layout is fully described by
    ``(root, n_realizations, chunk_runs)`` — exactly what is recorded.
    """
    meta = getattr(result, "meta", None)
    meta = meta if isinstance(meta, dict) else {}
    n_chunks = meta.get("chunks")
    if "seed" not in params or n_chunks is None:
        return None, None
    n_runs = params.get("n_runs")
    seed = {
        "root_entropy": int(params["seed"]),
        "spawned": int(n_runs) if n_runs is not None else None,
        "assignment": "SeedSequence(root).spawn(n)[i] -> realization i",
    }
    chunks = {"count": int(n_chunks)}
    if meta.get("chunk_runs") is not None:
        chunks["chunk_runs"] = int(meta["chunk_runs"])
    if meta.get("kernel") is not None:
        chunks["kernel"] = str(meta["kernel"])
    return seed, chunks


def _configured_transport() -> str | None:
    from repro.engine.executor import current_config
    from repro.engine.transport import resolve_transport

    config = current_config()
    return resolve_transport(config.transport, config.workers).name


def _diagnostics_digest(result) -> dict | None:
    meta = getattr(result, "meta", None)
    if not isinstance(meta, dict):
        return None
    diag = meta.get("diagnostics")
    if not isinstance(diag, dict):
        return None
    digest = _digest_of(diag)
    return {"digest": digest, "keys": sorted(map(str, diag))} if digest else None


def build_solve_manifest(
    capability: str,
    params: dict,
    result,
    *,
    requested: str,
    used: str,
    chain: list[str],
    fallback_error: str | None,
    ir_digest: str | None,
    cache_status: str | None,
) -> RunManifest | None:
    """Manifest of one registry dispatch; ``None`` when the parameters
    or result have no stable encoding (manifests are best-effort, the
    solve always wins)."""
    try:
        encoded = encode_params(params)
    except Uncacheable:
        return None
    digest = result_digest(result)
    model = current_model_context()
    seed, chunks = _seed_spec(params, result)
    return RunManifest(
        kind="solve",
        capability=capability,
        model=model,
        params=encoded,
        seed=seed,
        chunks=chunks,
        backend={
            "requested": requested,
            "used": used,
            "chain": list(chain),
            "fallback_error": fallback_error,
            "ir_digest": ir_digest,
        },
        cache=cache_status,
        diagnostics=_diagnostics_digest(result),
        environment=environment_fingerprint(),
        platform=platform_info(),
        transport=_configured_transport(),
        result={
            "digest": digest,
            "type": f"{type(result).__module__}.{type(result).__qualname__}",
        },
        replayable=bool(model and model.get("source") is not None
                        and digest is not None),
    )


def build_batch_manifest(
    kind: str,
    params: dict,
    result,
    *,
    model: dict | None,
    chunks: dict | None = None,
    seed: dict | None = None,
    replayable: bool | None = None,
) -> RunManifest | None:
    """Manifest of a batch entry point above the registry (makespan
    CDFs, sweeps) — the caller supplies the model description."""
    try:
        encoded = encode_params(params)
    except Uncacheable:
        return None
    digest = result_digest(result)
    if replayable is None:
        replayable = model is not None and digest is not None
    return RunManifest(
        kind=kind,
        capability=None,
        model=model,
        params=encoded,
        seed=seed,
        chunks=chunks,
        backend=None,
        cache=getattr(result, "meta", {}).get("cache")
        if isinstance(getattr(result, "meta", None), dict) else None,
        diagnostics=_diagnostics_digest(result),
        environment=environment_fingerprint(),
        platform=platform_info(),
        transport=_configured_transport(),
        result={
            "digest": digest,
            "type": f"{type(result).__module__}.{type(result).__qualname__}",
        },
        replayable=bool(replayable and digest is not None),
    )


def attach_manifest(result, manifest: RunManifest | None) -> None:
    """Attach to ``result.meta["manifest"]`` (when it has a meta dict)
    and publish via :func:`last_manifest`."""
    if manifest is None:
        return
    set_last_manifest(manifest)
    meta = getattr(result, "meta", None)
    if isinstance(meta, dict):
        meta["manifest"] = manifest
