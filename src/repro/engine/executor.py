"""Deterministic fan-out of independent work units over a process pool.

The experiment layer has three embarrassingly parallel workloads — SSA
ensemble realizations, per-machine finishing-time CDFs, and parameter
sweep points.  All of them route through :func:`run_tasks`, which runs
sequentially by default and fans out over ``concurrent.futures``
process workers inside a :func:`parallel` context::

    from repro import engine

    with engine.parallel(workers=4):
        ens = ssa_ensemble(model, grid, n_runs=200)

Determinism contract
--------------------
Results must be *bit-identical* regardless of worker count.  Two rules
enforce this:

1. Randomness is assigned per task up front via
   :func:`spawn_seeds` (``numpy.random.SeedSequence.spawn``), never
   drawn from a shared stream during execution.
2. :func:`run_tasks` preserves task order in its result list, and
   callers reduce partial results in that fixed order; chunk boundaries
   must be a function of the task list alone, never of the worker
   count.

Callables or task payloads that cannot be pickled silently degrade to
sequential execution (counted as ``engine.pickle_fallback``) — the
parallel path is an optimization, not a requirement.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.engine.metrics import get_registry

__all__ = [
    "EngineConfig",
    "parallel",
    "current_config",
    "run_tasks",
    "spawn_seeds",
    "welford_merge",
]


@dataclass(frozen=True)
class EngineConfig:
    """Active execution configuration (workers=1 means sequential)."""

    workers: int = 1

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


_config_stack: list[EngineConfig] = []


def current_config() -> EngineConfig:
    """The innermost :func:`parallel` configuration, or the environment
    default (``$REPRO_WORKERS``, else sequential)."""
    if _config_stack:
        return _config_stack[-1]
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return EngineConfig(workers=max(1, int(env)))
    return EngineConfig()


@contextmanager
def parallel(workers: int | None = None):
    """Run enclosed engine workloads on a pool of ``workers`` processes.

    ``workers=None`` uses the CPU count.  Contexts nest; the innermost
    wins.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    config = EngineConfig(workers=workers)
    _config_stack.append(config)
    try:
        yield config
    finally:
        _config_stack.pop()


def _is_picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return False
    return True


def run_tasks(fn: Callable, tasks: Iterable, workers: int | None = None) -> list:
    """Map ``fn`` over ``tasks``, preserving order.

    Sequential unless a :func:`parallel` context (or ``workers``) asks
    for more than one worker and there is more than one task.  ``fn``
    and every task must be picklable to take the pool path; otherwise
    execution silently falls back to sequential.
    """
    tasks = list(tasks)
    reg = get_registry()
    if workers is None:
        workers = current_config().workers
    workers = min(workers, len(tasks))
    if workers > 1 and not _is_picklable(fn, tasks):
        reg.increment("engine.pickle_fallback")
        workers = 1
    if workers <= 1:
        reg.increment("engine.sequential_batches")
        return [fn(task) for task in tasks]
    reg.increment("engine.parallel_batches")
    reg.increment("engine.tasks_dispatched", by=len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, tasks))


def spawn_seeds(seed: int, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child seed sequences of ``seed``.

    The assignment of child ``i`` to task ``i`` depends only on
    ``(seed, n)`` — this is what makes parallel stochastic results
    bit-identical to sequential ones.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    return list(np.random.SeedSequence(seed).spawn(n))


def welford_merge(
    a: tuple[int, np.ndarray, np.ndarray],
    b: tuple[int, np.ndarray, np.ndarray],
) -> tuple[int, np.ndarray, np.ndarray]:
    """Combine two Welford partials ``(count, mean, m2)`` (Chan et al.).

    Deterministic given its inputs; callers must fold partials in a
    fixed order for bit-identical results.
    """
    na, mean_a, m2a = a
    nb, mean_b, m2b = b
    if na == 0:
        return b
    if nb == 0:
        return a
    n = na + nb
    delta = mean_b - mean_a
    mean = mean_a + delta * (nb / n)
    m2 = m2a + m2b + delta * delta * (na * nb / n)
    return n, mean, m2
