"""Deterministic fan-out of independent work units over a transport.

The experiment layer has three embarrassingly parallel workloads — SSA
ensemble realizations, per-machine finishing-time CDFs, and parameter
sweep points.  All of them route through :func:`run_tasks`, which runs
sequentially by default and fans out over a selected transport
(:mod:`repro.engine.transport`: in-process, supervised process pool, or
fresh worker subprocesses) inside a :func:`parallel` context::

    from repro import engine

    with engine.parallel(workers=4):
        ens = ssa_ensemble(model, grid, n_runs=200)

Determinism contract
--------------------
Results must be *bit-identical* regardless of worker count **and of
transport**.  Two rules enforce this:

1. Randomness is assigned per task up front via
   :func:`spawn_seeds` (``numpy.random.SeedSequence.spawn``), never
   drawn from a shared stream during execution.
2. :func:`run_tasks` preserves task order in its result list, and
   callers reduce partial results in that fixed order; chunk boundaries
   must be a function of the task list alone, never of the worker
   count or the transport.

Callables or task payloads that cannot be pickled silently degrade to
in-process execution (counted as ``engine.pickle_fallback``) — every
isolating transport is an optimization, not a requirement.
"""

from __future__ import annotations

import os
import pickle
import warnings
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.engine import faults
from repro.engine.cancellation import current_scope
from repro.engine.metrics import get_registry
from repro.engine.resilience import (
    get_checkpoint_store,
    resolve_policy,
)
from repro.engine.transport import get_transport, resolve_transport

__all__ = [
    "EngineConfig",
    "parallel",
    "current_config",
    "run_tasks",
    "spawn_seeds",
    "welford_merge",
]


@dataclass(frozen=True)
class EngineConfig:
    """Active execution configuration (workers=1 means sequential).

    ``task_timeout`` and ``max_retries`` override the environment
    defaults (``REPRO_TASK_TIMEOUT`` / ``REPRO_MAX_RETRIES``) for the
    supervised parallel path; ``None`` defers to the environment.
    ``transport`` pins a transport by name (``inline`` / ``pool`` /
    ``subprocess``); ``None`` defers to ``$REPRO_TRANSPORT``, then to
    automatic selection (inline when sequential, pool otherwise).
    """

    workers: int = 1
    task_timeout: float | None = None
    max_retries: int | None = None
    transport: str | None = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.transport is not None:
            get_transport(self.transport)  # raises on unknown names


_config_stack: list[EngineConfig] = []


def current_config() -> EngineConfig:
    """The innermost :func:`parallel` configuration, or the environment
    default (``$REPRO_WORKERS``, else sequential)."""
    if _config_stack:
        return _config_stack[-1]
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return EngineConfig(workers=max(1, int(env)))
        except ValueError:
            warnings.warn(
                f"ignoring malformed REPRO_WORKERS={env!r}; running sequentially",
                RuntimeWarning,
                stacklevel=2,
            )
    return EngineConfig()


@contextmanager
def parallel(
    workers: int | None = None,
    task_timeout: float | None = None,
    max_retries: int | None = None,
    transport: str | None = None,
):
    """Run enclosed engine workloads on ``workers`` parallel workers.

    ``workers=None`` uses the CPU count.  Contexts nest; the innermost
    wins.  ``task_timeout`` / ``max_retries`` tune the supervised loop
    (see :mod:`repro.engine.resilience`) and ``transport`` pins how task
    units are executed (see :mod:`repro.engine.transport`); unset values
    inherit from the enclosing context, then the environment.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    outer = current_config()
    config = EngineConfig(
        workers=workers,
        task_timeout=task_timeout if task_timeout is not None else outer.task_timeout,
        max_retries=max_retries if max_retries is not None else outer.max_retries,
        transport=transport if transport is not None else outer.transport,
    )
    _config_stack.append(config)
    try:
        yield config
    finally:
        _config_stack.pop()


def _is_picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return False
    return True


def run_tasks(
    fn: Callable,
    tasks: Iterable,
    workers: int | None = None,
    checkpoint: str | None = None,
    transport: str | None = None,
) -> list:
    """Map ``fn`` over ``tasks``, preserving order.

    Execution routes through a transport (:mod:`repro.engine.transport`)
    resolved as: the ``transport`` argument, else the enclosing
    :func:`parallel` context's, else ``$REPRO_TRANSPORT``, else inline
    when effectively sequential and the supervised pool otherwise.  The
    pickle probe covers ``fn`` and the first task only — per-task pickle
    failures are absorbed by the transports themselves, which also
    provide retries, per-task timeouts, and crashed-worker recovery
    (see :mod:`repro.engine.resilience`).

    ``checkpoint`` names a content-addressed batch key: when a
    checkpoint store is active (``$REPRO_CHECKPOINT_DIR`` or
    ``configure_checkpoints``), each task's result is persisted as it
    completes, already-completed tasks of an interrupted earlier run are
    not recomputed (after the stored chunk layout is validated against
    this run's), and the batch's checkpoints are discarded once every
    task has finished.
    """
    tasks = list(tasks)
    reg = get_registry()
    config = current_config()
    scope = current_scope()
    scope.raise_if_cancelled()
    if workers is None:
        workers = config.workers
    workers = min(workers, len(tasks)) if tasks else 1
    if transport is None:
        transport = config.transport
    chosen = resolve_transport(transport, workers)
    if chosen.isolates_tasks and tasks and not _is_picklable(fn, tasks[0]):
        reg.increment("engine.pickle_fallback")
        chosen = get_transport("inline")

    store = get_checkpoint_store() if checkpoint else None
    results: dict[int, object] = {}
    if store is not None:
        results = store.load(checkpoint, len(tasks))
        if results:
            reg.increment("engine.checkpoint_resumes")
            reg.increment("engine.checkpoint_loaded", by=len(results))
    missing = [i for i in range(len(tasks)) if i not in results]

    def on_result(index: int, value) -> None:
        results[index] = value
        if store is not None:
            store.save(checkpoint, index, value, n_tasks=len(tasks))
        # Deterministic kill -9 for the service's crash-recovery suite:
        # die the instant this task unit's checkpoint is sealed, so a
        # restart provably resumes from exactly these chunks.
        if faults.should_fire("server_crash", task_index=index) is not None:
            os._exit(70)

    if chosen.name == "inline":
        reg.increment("engine.sequential_batches")
        if store is None and not scope.active:
            return [fn(task) for task in tasks]
        for index in missing:
            scope.raise_if_cancelled()
            on_result(index, fn(tasks[index]))
    elif missing:
        reg.increment("engine.parallel_batches")
        reg.increment("engine.tasks_dispatched", by=len(missing))
        policy = resolve_policy(config.task_timeout, config.max_retries)
        chosen.run(
            fn,
            [tasks[i] for i in missing],
            workers=min(workers, len(missing)),
            policy=policy,
            on_result=lambda j, value: on_result(missing[j], value),
        )
    if store is not None:
        store.discard(checkpoint)
    return [results[i] for i in range(len(tasks))]


def spawn_seeds(seed: int, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child seed sequences of ``seed``.

    The assignment of child ``i`` to task ``i`` depends only on
    ``(seed, n)`` — this is what makes parallel stochastic results
    bit-identical to sequential ones.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    return list(np.random.SeedSequence(seed).spawn(n))


def welford_merge(
    a: tuple[int, np.ndarray, np.ndarray],
    b: tuple[int, np.ndarray, np.ndarray],
) -> tuple[int, np.ndarray, np.ndarray]:
    """Combine two Welford partials ``(count, mean, m2)`` (Chan et al.).

    Deterministic given its inputs; callers must fold partials in a
    fixed order for bit-identical results.
    """
    na, mean_a, m2a = a
    nb, mean_b, m2b = b
    if na == 0:
        return b
    if nb == 0:
        return a
    n = na + nb
    delta = mean_b - mean_a
    mean = mean_a + delta * (nb / n)
    m2 = m2a + m2b + delta * delta * (na * nb / n)
    return n, mean, m2
