"""Deterministic fault injection for the resilience chaos suite.

Reproducibility work lives and dies on unattended re-runs surviving
partial failure, so the failure modes themselves must be reproducible:
a chaos test that crashes a *random* worker proves nothing about the
bit-identity contract.  This module injects failures at fixed,
content-addressed points — "crash the worker executing task 3", "corrupt
the next disk-cache entry written", "make the gmres solver report
non-convergence once" — and guarantees each fault fires exactly the
requested number of times *across processes*.

The active plan travels through the environment (``$REPRO_FAULT_PLAN``
names a JSON plan file), so pool workers spawned after :func:`inject`
see the same plan as the parent.  Claiming a fire is an atomic
``O_CREAT | O_EXCL`` file creation in the plan's scratch directory, so
two workers racing for a single-shot fault cannot both fire it.

Usage::

    from repro.engine import faults

    with faults.inject(faults.FaultSpec("worker_crash", task_index=3)) as plan:
        with engine.parallel(workers=4):
            out = ssa_ensemble(model, grid, n_runs=200)   # survives the crash
    assert plan.fired() == 1

Fault kinds
-----------
``worker_crash``
    ``os._exit(70)`` in the pool worker about to run ``task_index``
    (any task when ``None``).  Parent-side process-pool supervision must
    rebuild the pool and resubmit unfinished work.
``task_error``
    Raise :class:`InjectedFaultError` in the worker about to run
    ``task_index`` — a transient in-task failure the retry loop absorbs.
``task_timeout``
    Sleep ``sleep`` seconds in the worker before running ``task_index``,
    long enough to trip a configured per-task deadline.
``cache_corrupt``
    Truncate the next disk-cache payload written (a torn write); the
    integrity trailer must catch it on the next read.
``solver_nonconverge``
    Raise ``ConvergenceError`` at the entry of the steady-state method
    named by ``backend`` — exercised by the IR fallback chains.
``solver_silent_garbage``
    Make the steady-state method named by ``backend`` *return* a
    well-normalized but wrong probability vector while reporting
    success — the failure mode exit codes cannot catch.  The trust
    layer's residual sentinel (:mod:`repro.ir.guards`) must detect it
    and route the solve down the fallback chain.
``sentinel_violation``
    Force the trust layer's :func:`repro.ir.guards.verify` to reject the
    result of the capability named by ``backend`` (any, when ``None``)
    as if an invariant had failed — exercises the sentinel → fallback →
    metrics path without needing a numerically broken solver.
``shadow_mismatch``
    Force a shadow comparison against the backend named by ``backend``
    to report disagreement — exercises the quarantine path
    (``ir.trust.shadow_mismatch`` metric plus ``NumericalTrustError``).
``server_crash``
    ``os._exit(70)`` the process the moment the checkpointed task unit
    with batch index ``task_index`` completes (after its checkpoint is
    persisted) — a deterministic ``kill -9`` of the job service mid-
    ensemble, placed so the crash-recovery suite can assert a restart
    resumes from exactly the chunks that were sealed.
``queue_overflow``
    Make the service's admission layer treat its job queue as full for
    the next submission (a 429 + ``Retry-After`` backpressure response)
    without actually flooding it.
``tenant_flood``
    Make the admission layer treat the submitting tenant's token bucket
    as exhausted for the next submission (a 429 rate-limit response),
    as if the tenant had burst past its allowance.
``worker_partition``
    Black-hole a remote worker's traffic after it finishes the unit
    with ``task_index``: the worker computes the result, then suppresses
    heartbeats *and* the result delivery for ``sleep`` seconds before
    posting late — the coordinator must expire the lease, re-dispatch,
    and resolve the straggler's late result by digest agreement.
``heartbeat_loss``
    Make a remote worker stop heartbeating for ``sleep`` seconds while
    *continuing to compute* the unit with ``task_index`` — the
    coordinator must mark it suspect and re-dispatch without the answer
    ever diverging.
``lease_expiry``
    Force the coordinator to grant the unit with ``task_index`` a lease
    that cannot be renewed and expires almost immediately, despite a
    healthy worker — exercises the expiry → re-dispatch → circuit
    breaker path in isolation.

Hooks are free when no plan is active: one environment-dict lookup.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import asdict, dataclass

from repro.engine.metrics import get_registry

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "InjectedFaultError",
    "inject",
    "active",
    "should_fire",
]

_PLAN_ENV = "REPRO_FAULT_PLAN"

FAULT_KINDS = (
    "worker_crash",
    "task_error",
    "task_timeout",
    "cache_corrupt",
    "solver_nonconverge",
    "solver_silent_garbage",
    "sentinel_violation",
    "shadow_mismatch",
    "server_crash",
    "queue_overflow",
    "tenant_flood",
    "worker_partition",
    "heartbeat_loss",
    "lease_expiry",
)


class InjectedFaultError(RuntimeError):
    """A deliberate, injected task failure (``task_error`` faults)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned failure.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    task_index:
        Restrict worker-side faults to the task with this batch index
        (``None`` = any task).
    backend:
        Restrict solver-side faults (``solver_nonconverge``,
        ``solver_silent_garbage``) to this solver method name;
        for ``sentinel_violation`` the capability name, for
        ``shadow_mismatch`` the shadow backend name.
    sleep:
        Seconds a ``task_timeout`` fault stalls the worker.
    times:
        How many times the fault may fire in total, across processes.
    """

    kind: str
    task_index: int | None = None
    backend: str | None = None
    sleep: float = 0.0
    times: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError(f"fault must be allowed to fire at least once, got {self.times}")

    def matches(self, kind: str, task_index: int | None, backend: str | None) -> bool:
        if self.kind != kind:
            return False
        if self.task_index is not None and self.task_index != task_index:
            return False
        if self.backend is not None and self.backend != backend:
            return False
        return True


class FaultInjection:
    """Handle yielded by :func:`inject`: inspect what actually fired.

    Valid both inside the block (live claim-file counts) and after it
    exits (the counts are snapshotted before the plan's scratch
    directory is removed).
    """

    def __init__(self, root: str, specs: tuple[FaultSpec, ...]):
        self.root = root
        self.specs = specs
        self._snapshot: list[str] | None = None

    def _claimed(self) -> list[str]:
        if self._snapshot is not None:
            return self._snapshot
        try:
            return os.listdir(os.path.join(self.root, "fired"))
        except FileNotFoundError:
            return []

    def _seal(self) -> None:
        """Freeze the claim counts (called by ``inject`` before cleanup)."""
        self._snapshot = self._claimed()

    def fired(self, kind: str | None = None) -> int:
        """How many fault slots have been claimed (optionally by kind)."""
        names = self._claimed()
        if kind is None:
            return len(names)
        claimed = 0
        for name in names:
            spec_id = int(name.split(".", 1)[0])
            if self.specs[spec_id].kind == kind:
                claimed += 1
        return claimed


@contextmanager
def inject(*specs: FaultSpec):
    """Activate a deterministic fault plan for the enclosed block.

    The plan is visible to this process *and* to any worker process
    started inside the block (it travels via ``$REPRO_FAULT_PLAN``).
    Plans do not nest — the innermost wins for workers started under it.
    """
    for spec in specs:
        if not isinstance(spec, FaultSpec):
            raise TypeError(f"expected FaultSpec, got {type(spec).__name__}")
    root = tempfile.mkdtemp(prefix="repro-faults-")
    os.mkdir(os.path.join(root, "fired"))
    plan_path = os.path.join(root, "plan.json")
    with open(plan_path, "w", encoding="utf-8") as fh:
        json.dump({"scratch": os.path.join(root, "fired"),
                   "faults": [asdict(spec) for spec in specs]}, fh)
    previous = os.environ.get(_PLAN_ENV)
    os.environ[_PLAN_ENV] = plan_path
    handle = FaultInjection(root, tuple(specs))
    try:
        yield handle
    finally:
        if previous is None:
            os.environ.pop(_PLAN_ENV, None)
        else:
            os.environ[_PLAN_ENV] = previous
        handle._seal()
        shutil.rmtree(root, ignore_errors=True)


def active() -> bool:
    """Whether a fault plan is currently in effect."""
    return _PLAN_ENV in os.environ


def _load_plan() -> dict | None:
    path = os.environ.get(_PLAN_ENV)
    if not path:
        return None
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _claim(scratch: str, spec_id: int, times: int) -> bool:
    """Atomically claim one of the fault's ``times`` fire slots."""
    for slot in range(times):
        try:
            fd = os.open(
                os.path.join(scratch, f"{spec_id}.{slot}"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            continue
        except OSError:
            return False
        os.close(fd)
        return True
    return False


def should_fire(
    kind: str,
    task_index: int | None = None,
    backend: str | None = None,
) -> FaultSpec | None:
    """Claim and return the first matching planned fault, else ``None``.

    Free when no plan is active.  A returned spec means this caller won
    the (cross-process) race for one of the fault's fire slots and must
    now enact it.
    """
    if _PLAN_ENV not in os.environ:
        return None
    plan = _load_plan()
    if plan is None:
        return None
    for spec_id, raw in enumerate(plan["faults"]):
        spec = FaultSpec(**raw)
        if not spec.matches(kind, task_index, backend):
            continue
        if _claim(plan["scratch"], spec_id, spec.times):
            get_registry().increment(f"faults.injected.{kind}")
            return spec
    return None
