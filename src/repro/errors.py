"""Exception hierarchy shared by every subpackage of :mod:`repro`.

Keeping all error types in a single module gives downstream users one
import point (``from repro.errors import PepaSyntaxError``) and lets the
CLI map any library failure to a non-zero exit code with a uniform
message format.
"""

from __future__ import annotations

from contextlib import contextmanager


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


# ---------------------------------------------------------------------------
# PEPA / process-algebra front end
# ---------------------------------------------------------------------------


class PepaError(ReproError):
    """Base class for PEPA language and semantics errors."""


class PepaSyntaxError(PepaError):
    """Raised by the lexer or parser on malformed PEPA source.

    Carries ``line`` and ``column`` (1-based) when the location is known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class UnboundConstantError(PepaError):
    """A process constant is referenced but never defined."""


class UnboundRateError(PepaError):
    """A rate name is referenced but never defined."""


class CooperationError(PepaError):
    """Illegal cooperation, e.g. two passive participants synchronizing."""


class StateSpaceLimitError(PepaError):
    """State-space derivation exceeded the configured maximum state count."""


class DeadlockError(PepaError):
    """The derived transition system contains a deadlocked state where one
    was not expected (steady-state analysis of an absorbing chain)."""


class IllFormedModelError(PepaError):
    """Static well-formedness violation (self-loop rate 0, empty choice...)."""


# ---------------------------------------------------------------------------
# Bio-PEPA
# ---------------------------------------------------------------------------


class BioPepaError(ReproError):
    """Base class for Bio-PEPA model errors."""


class KineticLawError(BioPepaError):
    """A kinetic law references unknown species or has invalid parameters."""


class StoichiometryError(BioPepaError):
    """Inconsistent stoichiometry in a reaction definition."""


# ---------------------------------------------------------------------------
# GPEPA / fluid analysis
# ---------------------------------------------------------------------------


class GPepaError(ReproError):
    """Base class for grouped-PEPA model errors."""


class FluidSemanticsError(GPepaError):
    """The grouped model violates a precondition of the fluid translation."""


# ---------------------------------------------------------------------------
# Intermediate representation / solver backends
# ---------------------------------------------------------------------------


class IRError(ReproError):
    """Base class for intermediate-representation and backend errors.

    The frontend shims catch these and re-raise the frontend's own error
    type (``PepaError`` / ``BioPepaError`` / ``GPepaError``) with the
    same message, so existing callers keep their exception contracts.
    """


class BackendError(IRError):
    """Unknown capability/backend, or a backend rejected the given IR."""


class SimulationLimitError(IRError):
    """A stochastic simulation exceeded its event budget.

    Carries the structured ``budget`` (the configured ``max_events``)
    and ``events`` (jumps recorded when the budget tripped) so callers
    can distinguish a tight budget from a runaway model without parsing
    the message.
    """

    def __init__(
        self,
        message: str,
        *,
        budget: int | None = None,
        events: int | None = None,
    ):
        self.budget = budget
        self.events = events
        super().__init__(message)


class BatchedKernelError(BackendError):
    """The vectorized SSA kernel cannot serve this request.

    Raised when the batched ensemble kernel is asked for something only
    the scalar steppers provide (single-trajectory mode), or when its
    vectorized propensity evaluation fails the bit-identity self-check
    against the scalar law.  Registered as recoverable in the ``ssa``
    fallback chain, so the request degrades to the scalar oracle
    (``direct``) instead of failing."""


@contextmanager
def reraise_ir_errors(error_type: type[ReproError]):
    """Convert :class:`IRError` raised in the block into ``error_type``.

    The frontend shims wrap their registry calls in this so callers keep
    seeing the frontend's own exception class with the backend's message.
    """
    try:
        yield
    except IRError as exc:
        raise error_type(str(exc)) from exc


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class for execution-engine failures (pools, checkpoints)."""


class TaskTimeoutError(EngineError):
    """A task exceeded its per-task deadline on every allowed attempt.

    Raised rather than degraded to sequential: a task that hangs in a
    worker would hang the parent too.
    """


class TransportError(EngineError):
    """A transport could not deliver a task unit or its result.

    Covers unknown transport names, workers that exit without producing
    a sealed result, and result frames that fail their integrity check.
    Distinct from :class:`TaskTimeoutError` (the task ran too long) and
    from exceptions raised *by* the task, which transports re-raise
    as-is.
    """


class WorkerRejectedError(TransportError):
    """A fleet coordinator refused a worker's registration.

    Raised worker-side when registration is denied — a bad or missing
    fleet token (403) or an environment fingerprint that differs from
    the coordinator's (409).  A rejected worker must exit rather than
    retry: the refusal is deterministic, and a worker on a different
    numerical stack could silently break bit-identity if admitted.
    """


class ReplayError(EngineError):
    """A run manifest cannot be replayed, or the replay diverged.

    Raised for manifests that are malformed, not self-contained
    (``replayable`` false), produced by an incompatible manifest schema
    version, or — under ``--verify`` — whose re-execution failed to
    reproduce the recorded result digest bit-for-bit.
    """


class JobCancelledError(EngineError):
    """A workload was abandoned by its cancel scope.

    Raised cooperatively at task-unit boundaries (ensemble chunks,
    per-machine solves, sweep points) when the enclosing
    :class:`repro.engine.cancellation.CancelScope` was cancelled or its
    deadline passed.  ``reason`` is ``"cancelled"`` for an explicit
    cancellation and ``"deadline"`` for an overrun, so the job service
    can record the two as distinct terminal states.
    """

    def __init__(self, message: str, *, reason: str = "cancelled"):
        self.reason = reason
        super().__init__(message)


# ---------------------------------------------------------------------------
# Job service
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for solver-service failures (server and client side)."""


class JobRejectedError(ServiceError):
    """The service refused a submission under admission control.

    Carries the HTTP ``status`` the server answered with (429 for
    backpressure/rate limiting, 503 for overload shedding or draining)
    and the ``retry_after`` hint in seconds, so clients can implement
    honest backoff instead of parsing messages.
    """

    def __init__(self, message: str, *, status: int, retry_after: float | None = None):
        self.status = status
        self.retry_after = retry_after
        super().__init__(message)


# ---------------------------------------------------------------------------
# Numerics
# ---------------------------------------------------------------------------


class NumericsError(ReproError):
    """Base class for numerical back-end failures."""


class SingularGeneratorError(NumericsError):
    """The CTMC generator does not admit a unique steady-state solution
    (reducible chain, absorbing states, or numerically singular system)."""


class ConvergenceError(NumericsError):
    """An iterative solver failed to converge within its iteration budget."""


class NumericalTrustError(NumericsError):
    """A solver result violated a structural invariant it must satisfy.

    Raised by the trust layer (:mod:`repro.ir.guards`) when a backend
    returns a plausible-looking but wrong answer — a steady-state vector
    off the probability simplex, a non-monotone passage CDF, an ODE
    trajectory with NaNs — or when a shadow re-solve on an independent
    backend disagrees beyond tolerance.  The structured attributes let
    the fallback chain and the chaos suite identify exactly which
    invariant failed on which backend.

    Attributes
    ----------
    invariant:
        Short name of the violated invariant (e.g. ``"simplex"``,
        ``"residual"``, ``"cdf_monotone"``, ``"shadow_mismatch"``).
    capability / backend:
        The registry dispatch that produced the untrusted result.
    token:
        The IR's cache-identity token when it has one (``None``
        otherwise), so a violation can be tied to a cached entry.
    detail:
        Free-form measurement backing the verdict (the defect size).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        capability: str | None = None,
        backend: str | None = None,
        token: object = None,
        detail: float | None = None,
    ):
        self.invariant = invariant
        self.capability = capability
        self.backend = backend
        self.token = token
        self.detail = detail
        where = f"{capability}/{backend}" if capability and backend else (backend or "?")
        super().__init__(f"[{invariant}] {where}: {message}")


# ---------------------------------------------------------------------------
# Container framework
# ---------------------------------------------------------------------------


class ContainerError(ReproError):
    """Base class for container-framework errors."""


class RecipeError(ContainerError):
    """Malformed build recipe (unknown section, missing bootstrap...)."""


class BuildError(ContainerError):
    """A build step failed (unknown command, unresolvable package...)."""


class PackageResolutionError(BuildError):
    """The simulated package universe cannot satisfy a requirement."""


class RuntimeLaunchError(ContainerError):
    """The container runtime could not start the requested entrypoint."""


class ImageFormatError(ContainerError):
    """An image file or manifest is corrupt or has an unsupported version."""


class HubError(ContainerError):
    """Registry-level failure (unknown collection, tag conflict...)."""


class ValidationFailure(ContainerError):
    """Container output diverged from the native reference output."""
