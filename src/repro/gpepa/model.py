"""Grouped PEPA model structure.

A grouped model reuses the PEPA sequential layer (rate and process
definitions, :class:`repro.pepa.semantics.SequentialSemantics`) and adds:

* :class:`Group` — a labelled population of sequential components with
  initial counts per local derivative;
* a *group composition tree* of :class:`GroupReference` leaves and
  :class:`GroupCooperation` nodes with shared action sets.

The fluid state vector is laid out group-by-group, derivative-by-
derivative, in discovery order; :class:`GroupedModel` owns that layout
(`state_names`, `index_of`) so every analysis addresses counts the same
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FluidSemanticsError
from repro.pepa.semantics import ActiveRate, SequentialSemantics
from repro.pepa.syntax import Constant, Model, ProcessTerm, unparse

__all__ = ["Group", "GroupReference", "GroupCooperation", "GroupedModel", "LocalRate"]


@dataclass(frozen=True)
class Group:
    """A population group: ``label{Comp1[n1] || Comp2[n2]}``.

    ``initial_counts`` maps component constant names to their initial
    populations.  All component states must belong to the same
    sequential state machine family (they typically do — different
    derivatives of one component definition).
    """

    label: str
    initial_counts: dict[str, float]

    def __post_init__(self):
        if not self.initial_counts:
            raise FluidSemanticsError(f"group {self.label!r} is empty")
        for name, count in self.initial_counts.items():
            if count < 0:
                raise FluidSemanticsError(
                    f"group {self.label!r} has negative count for {name!r}"
                )


@dataclass(frozen=True)
class GroupReference:
    """A leaf of the composition tree naming a group."""

    label: str


@dataclass(frozen=True)
class GroupCooperation:
    """Cooperation of two grouped subtrees on a set of actions."""

    left: "GroupReference | GroupCooperation"
    right: "GroupReference | GroupCooperation"
    actions: tuple[str, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "actions", tuple(sorted(set(self.actions))))


@dataclass(frozen=True)
class LocalRate:
    """One local transition in fluid form: derivative ``source`` performs
    ``action`` at per-component rate ``rate`` and becomes ``target``
    (both are state-vector indices)."""

    group: str
    action: str
    source: int
    target: int
    rate: float


class GroupedModel:
    """An analyzed grouped PEPA model, ready for the fluid translation.

    Parameters
    ----------
    definitions:
        A PEPA :class:`Model` providing the rate and sequential process
        definitions (its own system equation is ignored).
    groups:
        The population groups.
    system:
        The group composition tree.
    """

    def __init__(
        self,
        definitions: Model,
        groups: list[Group],
        system: GroupReference | GroupCooperation,
        source_name: str = "<gpepa>",
    ):
        self.definitions = definitions
        self.groups = {g.label: g for g in groups}
        if len(self.groups) != len(groups):
            raise FluidSemanticsError("duplicate group labels")
        self.system = system
        self.source_name = source_name
        self._semantics = SequentialSemantics(definitions)
        self._validate_system()
        # Discover each group's local derivative set and the state layout.
        self.state_names: list[tuple[str, str]] = []  # (group, derivative label)
        self._index: dict[tuple[str, str], int] = {}
        self._derivatives: dict[str, list[ProcessTerm]] = {}
        self._transitions: list[LocalRate] = []
        for group in groups:
            self._explore_group(group)
        self._initial = np.zeros(len(self.state_names))
        for group in groups:
            for name, count in group.initial_counts.items():
                self._initial[self.index_of(group.label, name)] = count

    # -- construction helpers -------------------------------------------------

    def _validate_system(self) -> None:
        seen: set[str] = set()

        def walk(node) -> None:
            if isinstance(node, GroupReference):
                if node.label not in self.groups:
                    raise FluidSemanticsError(
                        f"composition references undefined group {node.label!r}"
                    )
                if node.label in seen:
                    raise FluidSemanticsError(
                        f"group {node.label!r} appears twice in the composition"
                    )
                seen.add(node.label)
            elif isinstance(node, GroupCooperation):
                walk(node.left)
                walk(node.right)
            else:
                raise FluidSemanticsError(f"bad composition node {node!r}")

        walk(self.system)
        unused = set(self.groups) - seen
        if unused:
            raise FluidSemanticsError(f"group(s) never composed: {sorted(unused)}")

    @staticmethod
    def _label(term: ProcessTerm) -> str:
        return term.name if isinstance(term, Constant) else unparse(term)

    def _explore_group(self, group: Group) -> None:
        """Enumerate the group's derivative closure and local transitions."""
        pending: list[ProcessTerm] = [Constant(n) for n in group.initial_counts]
        terms: list[ProcessTerm] = []
        seen: set[ProcessTerm] = set()
        while pending:
            term = pending.pop()
            if term in seen:
                continue
            seen.add(term)
            terms.append(term)
            for tr in self._semantics.transitions(term):
                if tr.target not in seen:
                    pending.append(tr.target)
        # Stable order: keep initial components first (declaration order),
        # then discovered derivatives sorted by label for determinism.
        initial = [Constant(n) for n in group.initial_counts]
        rest = sorted(
            (t for t in terms if t not in initial), key=lambda t: self._label(t)
        )
        ordered = initial + rest
        self._derivatives[group.label] = ordered
        for term in ordered:
            key = (group.label, self._label(term))
            if key in self._index:
                raise FluidSemanticsError(
                    f"group {group.label!r} has two derivatives labelled {key[1]!r}"
                )
            self._index[key] = len(self.state_names)
            self.state_names.append(key)
        for term in ordered:
            src = self._index[(group.label, self._label(term))]
            for tr in self._semantics.transitions(term):
                if not isinstance(tr.rate, ActiveRate):
                    raise FluidSemanticsError(
                        f"fluid semantics requires active rates; component "
                        f"{self._label(term)!r} performs {tr.action!r} passively"
                    )
                dst = self._index[(group.label, self._label(tr.target))]
                self._transitions.append(
                    LocalRate(
                        group=group.label,
                        action=tr.action,
                        source=src,
                        target=dst,
                        rate=tr.rate.value,
                    )
                )

    # -- public API -----------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Dimension of the fluid state vector."""
        return len(self.state_names)

    @property
    def transitions(self) -> tuple[LocalRate, ...]:
        return tuple(self._transitions)

    @property
    def actions(self) -> frozenset[str]:
        return frozenset(t.action for t in self._transitions)

    def index_of(self, group: str, derivative: str) -> int:
        """Position of ``(group, derivative)`` in the state vector."""
        try:
            return self._index[(group, derivative)]
        except KeyError:
            known = [d for g, d in self.state_names if g == group]
            raise KeyError(
                f"no derivative {derivative!r} in group {group!r}; known: {known}"
            ) from None

    def initial_state(self) -> np.ndarray:
        """Initial counts vector (copy)."""
        return self._initial.copy()

    def group_total(self, group: str) -> float:
        """Total population of a group (conserved by the fluid ODEs)."""
        if group not in self.groups:
            raise KeyError(f"unknown group {group!r}")
        return float(sum(self.groups[group].initial_counts.values()))

    def group_indices(self, group: str) -> list[int]:
        """State-vector indices belonging to a group."""
        return [i for i, (g, _d) in enumerate(self.state_names) if g == group]
