"""Fluid (mean-field) translation of grouped PEPA models.

The Hayden–Bradley fluid semantics: component counts become continuous
variables, every action's *global* rate is computed on the composition
tree —

* at a group: the sum over enabled local transitions of
  ``count(source) * local_rate``,
* at a cooperation on a shared action: the **minimum** of the two
  subtrees' rates,
* at a cooperation on an unshared action: the **sum**,

and each local transition receives a share of the global rate
proportional to its contribution within its subtree (normalized-min
sharing).  The resulting ODE system conserves each group's population
exactly.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.gpepa.model import GroupCooperation, GroupReference, GroupedModel, LocalRate
from repro.numerics.ode import integrate_ode, rk4_fixed_step

__all__ = ["fluid_rhs", "fluid_trajectory", "FluidTrajectory", "action_rate"]


def _group_flows(
    model: GroupedModel, label: str, action: str
) -> list[LocalRate]:
    return [t for t in model.transitions if t.group == label and t.action == action]


class _FluidSystem:
    """Pre-compiled flow structure: for each action, the tree of flow
    lists, so the RHS evaluation allocates nothing per step beyond the
    numpy temporaries."""

    def __init__(self, model: GroupedModel):
        self.model = model
        self.actions = sorted(model.actions)
        # Per action: evaluation plan as a nested structure mirroring the
        # composition tree; leaves carry (src_indices, tgt_indices, rates).
        self.plans = {a: self._compile(model.system, a) for a in self.actions}

    def _compile(self, node, action: str):
        if isinstance(node, GroupReference):
            flows = _group_flows(self.model, node.label, action)
            src = np.array([f.source for f in flows], dtype=np.intp)
            tgt = np.array([f.target for f in flows], dtype=np.intp)
            rates = np.array([f.rate for f in flows], dtype=np.float64)
            return ("leaf", src, tgt, rates)
        assert isinstance(node, GroupCooperation)
        left = self._compile(node.left, action)
        right = self._compile(node.right, action)
        shared = action in node.actions
        return ("coop", shared, left, right)

def _plan_rate(plan, x: np.ndarray) -> float:
    """Unthrottled apparent rate of a compiled subtree."""
    if plan[0] == "leaf":
        _tag, src, _tgt, rates = plan
        if src.size == 0:
            return 0.0
        return float(np.dot(x[src], rates))
    _tag, shared, left, right = plan
    rl = _plan_rate(left, x)
    rr = _plan_rate(right, x)
    return min(rl, rr) if shared else rl + rr


def _plan_apply(plan, x: np.ndarray, dx: np.ndarray, scale: float) -> None:
    """Accumulate throttled flows into ``dx``.

    ``scale`` is the ratio of the rate granted from above to this
    subtree's own apparent rate (1.0 when unthrottled).
    """
    if scale == 0.0:
        return
    if plan[0] == "leaf":
        _tag, src, tgt, rates = plan
        if src.size == 0:
            return
        flow = x[src] * rates * scale
        np.subtract.at(dx, src, flow)
        np.add.at(dx, tgt, flow)
        return
    _tag, shared, left, right = plan
    if not shared:
        _plan_apply(left, x, dx, scale)
        _plan_apply(right, x, dx, scale)
        return
    rl = _plan_rate(left, x)
    rr = _plan_rate(right, x)
    granted = min(rl, rr) * scale
    _plan_apply(left, x, dx, 0.0 if rl == 0.0 else granted / rl)
    _plan_apply(right, x, dx, 0.0 if rr == 0.0 else granted / rr)


def action_rate(model: GroupedModel, action: str, x: np.ndarray) -> float:
    """Global fluid rate of ``action`` at counts ``x`` (the fluid
    throughput; GPA's reward primitives integrate over this)."""
    system = _FluidSystem(model)
    if action not in system.plans:
        raise KeyError(f"model has no action {action!r}; actions: {system.actions}")
    return _plan_rate(system.plans[action], np.asarray(x, dtype=np.float64))


def fluid_rhs(model: GroupedModel):
    """Compile the fluid ODE right-hand side ``f(t, x) -> dx/dt``."""
    system = _FluidSystem(model)
    plans = list(system.plans.values())
    n = model.n_states

    def rhs(_t: float, x: np.ndarray) -> np.ndarray:
        # Negative excursions from integrator round-off are clamped so
        # apparent rates stay physical.
        xc = np.clip(x, 0.0, None)
        dx = np.zeros(n)
        for plan in plans:
            _plan_apply(plan, xc, dx, 1.0)
        return dx

    return rhs


@dataclass(frozen=True)
class FluidTrajectory:
    """A fluid solution: counts per (group, derivative) over time."""

    model: GroupedModel
    times: np.ndarray
    counts: np.ndarray

    def of(self, group: str, derivative: str) -> np.ndarray:
        """Time series of one population coordinate."""
        return self.counts[:, self.model.index_of(group, derivative)]

    def group_series(self, group: str) -> np.ndarray:
        """Total population of a group over time (constant up to solver
        tolerance — asserted by the conservation tests)."""
        idx = self.model.group_indices(group)
        return self.counts[:, idx].sum(axis=1)

    def final(self) -> dict[tuple[str, str], float]:
        return {
            key: float(self.counts[-1, i])
            for i, key in enumerate(self.model.state_names)
        }


def fluid_trajectory(
    model: GroupedModel,
    times: Sequence[float],
    method: str = "LSODA",
    rtol: float = 1e-8,
    atol: float = 1e-10,
) -> FluidTrajectory:
    """Integrate the fluid ODEs over ``times``.

    ``method="rk4"`` selects the deterministic fixed-step integrator
    (bit-identical output for container validation).
    """
    rhs = fluid_rhs(model)
    x0 = model.initial_state()
    if method == "rk4":
        counts = rk4_fixed_step(rhs, x0, times)
    else:
        counts = integrate_ode(rhs, x0, times, method=method, rtol=rtol, atol=atol)
    counts = np.clip(counts, 0.0, None)
    return FluidTrajectory(
        model=model, times=np.asarray(times, dtype=np.float64), counts=counts
    )
