"""Fluid (mean-field) translation of grouped PEPA models.

The Hayden–Bradley fluid semantics: component counts become continuous
variables, every action's *global* rate is computed on the composition
tree —

* at a group: the sum over enabled local transitions of
  ``count(source) * local_rate``,
* at a cooperation on a shared action: the **minimum** of the two
  subtrees' rates,
* at a cooperation on an unshared action: the **sum**,

and each local transition receives a share of the global rate
proportional to its contribution within its subtree (normalized-min
sharing).  The resulting ODE system conserves each group's population
exactly.

The compiled plan machinery lives in :mod:`repro.gpepa.lower` (it is
shared with the stochastic simulation and the reaction-IR lowering);
the integration itself runs through the ``ode`` capability of the
backend registry.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import GPepaError, reraise_ir_errors
from repro.gpepa.lower import (  # noqa: F401  (re-exported for lna/rewards)
    PlanRhs,
    _FluidSystem,
    _group_flows,
    _plan_apply,
    _plan_rate,
    lower_reactions,
)
from repro.gpepa.model import GroupedModel
from repro.ir import solve

__all__ = ["fluid_rhs", "fluid_trajectory", "FluidTrajectory", "action_rate"]


def action_rate(model: GroupedModel, action: str, x: np.ndarray) -> float:
    """Global fluid rate of ``action`` at counts ``x`` (the fluid
    throughput; GPA's reward primitives integrate over this)."""
    system = _FluidSystem(model)
    if action not in system.plans:
        raise KeyError(f"model has no action {action!r}; actions: {system.actions}")
    return _plan_rate(system.plans[action], np.asarray(x, dtype=np.float64))


def fluid_rhs(model: GroupedModel):
    """Compile the fluid ODE right-hand side ``f(t, x) -> dx/dt``."""
    return PlanRhs(model)


@dataclass(frozen=True)
class FluidTrajectory:
    """A fluid solution: counts per (group, derivative) over time."""

    model: GroupedModel
    times: np.ndarray
    counts: np.ndarray

    def of(self, group: str, derivative: str) -> np.ndarray:
        """Time series of one population coordinate."""
        return self.counts[:, self.model.index_of(group, derivative)]

    def group_series(self, group: str) -> np.ndarray:
        """Total population of a group over time (constant up to solver
        tolerance — asserted by the conservation tests)."""
        idx = self.model.group_indices(group)
        return self.counts[:, idx].sum(axis=1)

    def final(self) -> dict[tuple[str, str], float]:
        return {
            key: float(self.counts[-1, i])
            for i, key in enumerate(self.model.state_names)
        }


def fluid_trajectory(
    model: GroupedModel,
    times: Sequence[float],
    method: str = "LSODA",
    rtol: float = 1e-8,
    atol: float = 1e-10,
) -> FluidTrajectory:
    """Integrate the fluid ODEs over ``times``.

    ``method="rk4"`` selects the deterministic fixed-step integrator
    (bit-identical output for container validation).
    """
    ir = lower_reactions(model)
    with reraise_ir_errors(GPepaError):
        if method == "rk4":
            counts = solve(ir, "ode", backend="rk4", times=times)
        else:
            counts = solve(
                ir, "ode", times=times, method=method, rtol=rtol, atol=atol
            )
    return FluidTrajectory(
        model=model, times=np.asarray(times, dtype=np.float64), counts=counts
    )
