"""GPAnalyser example models.

The paper validates its GPAnalyser container on the tool's bundled
example models of homogeneous client/server systems:
``clientServerScalability.gpepa`` (paper Fig. 5) — "a varying number of
client systems making requests to a variable number of servers, where
the servers are rewarded for satisfying requests within a given time
period" — and the client/server power-consumption model.

The original Google-Code archive is gone; these reconstructions follow
the model structure used throughout the GPA literature (Stefanek,
Hayden & Bradley): clients think/request/receive, servers fetch and
reply and occasionally break and get repaired.
"""

from __future__ import annotations

from repro.gpepa.model import GroupedModel
from repro.gpepa.parser import parse_gpepa

__all__ = [
    "client_server_scalability_source",
    "client_server_power_source",
    "client_server_scalability",
    "client_server_power",
]


def client_server_scalability_source(n_clients: int = 100, n_servers: int = 10) -> str:
    """Source of the client/server scalability model.

    Clients issue requests (synchronized with servers), wait for data,
    then think.  Servers fetch the data, reply, and occasionally break
    and are repaired.  The served-within-deadline reward is evaluated on
    the ``request`` fluid throughput.
    """
    return f"""\
// clientServerScalability (GPAnalyser example, reconstructed)
rr  = 2.0;    // client request rate
rw  = 0.1;    // client data-wait (reply consumption) handled via data action
rt  = 0.27;   // client think rate
rs  = 4.0;    // server request-acceptance rate
rd  = 1.0;    // server data-delivery rate
rb  = 0.02;   // server breakage rate
rf  = 0.5;    // server repair rate
Client = (request, rr).Client_wait;
Client_wait = (data, rw).Client_think;
Client_think = (think, rt).Client;
Server = (request, rs).Server_get;
Server_get = (data, rd).Server + (break, rb).Server_broken;
Server_broken = (fix, rf).Server;
Clients{{Client[{n_clients}]}} <request, data> Servers{{Server[{n_servers}]}}
"""


def client_server_power_source(n_clients: int = 100, n_servers: int = 20) -> str:
    """Source of the client/server power-consumption model.

    Servers may power down when idle and must power up before serving;
    the power reward weighs each server state by its wattage
    (busy > idle > off) and is evaluated with
    :func:`repro.gpepa.rewards.reward_series`.
    """
    return f"""\
// clientServerPower (GPAnalyser example, reconstructed)
rr  = 1.0;    // client request rate
rt  = 0.3;    // client think rate
rs  = 2.0;    // server service rate
rdn = 0.05;   // server power-down rate
rup = 0.4;    // server power-up rate
Client = (request, rr).Client_think;
Client_think = (think, rt).Client;
Server_idle = (request, rs).Server_busy + (down, rdn).Server_off;
Server_busy = (serve, rs).Server_idle;
Server_off = (up, rup).Server_idle;
Clients{{Client[{n_clients}]}} <request> Servers{{Server_idle[{n_servers}]}}
"""


def client_server_scalability(n_clients: int = 100, n_servers: int = 10) -> GroupedModel:
    """Parsed scalability model (see :func:`client_server_scalability_source`)."""
    return parse_gpepa(
        client_server_scalability_source(n_clients, n_servers),
        source_name="clientServerScalability",
    )


def client_server_power(n_clients: int = 100, n_servers: int = 20) -> GroupedModel:
    """Parsed power model (see :func:`client_server_power_source`)."""
    return parse_gpepa(
        client_server_power_source(n_clients, n_servers),
        source_name="clientServerPower",
    )


#: Power draw per server state (watts), used by the power example and bench.
POWER_WEIGHTS = {
    ("Servers", "Server_busy"): 200.0,
    ("Servers", "Server_idle"): 90.0,
    ("Servers", "Server_off"): 5.0,
}
