"""GPEPA — Grouped PEPA with fluid (mean-field) semantics.

Grouped PEPA (Hayden & Bradley) replaces the CTMC of a massively
replicated PEPA model with a system of ordinary differential equations
over component *counts*, enabling the ~10^129-state analyses the paper
attributes to the GPAnalyser tool.

A grouped model is a set of component groups — each holding counts of
sequential PEPA components — composed with cooperation over shared
actions.  The fluid translation yields::

    dx[G, d]/dt = inflows - outflows

where each action's global rate is the minimum of the cooperating
subtrees' apparent rates (evaluated on the continuous counts), shared
proportionally among the enabled transitions.

Example::

    from repro.gpepa import parse_gpepa, fluid_trajectory
    model = parse_gpepa('''
        rr = 2.0;  rt = 0.27;  rs = 4.0;
        Client = (request, rr).Client_think;
        Client_think = (think, rt).Client;
        Server = (request, rs).Server_log;
        Server_log = (log, 2.0).Server;
        Clients{Client[100]} <request> Servers{Server[10]}
    ''')
    traj = fluid_trajectory(model, times)
"""

from repro.gpepa.model import GroupedModel, Group, GroupCooperation, GroupReference
from repro.gpepa.parser import parse_gpepa
from repro.gpepa.fluid import fluid_trajectory, fluid_rhs, FluidTrajectory
from repro.gpepa.rewards import action_throughput_series, reward_series
from repro.gpepa.simulation import (
    gssa_trajectory,
    gssa_ensemble,
    GssaTrajectory,
    GssaEnsemble,
)
from repro.gpepa.lna import lna_trajectory, LnaTrajectory
from repro.gpepa.examples import (
    client_server_scalability_source,
    client_server_power_source,
    client_server_scalability,
    client_server_power,
)

__all__ = [
    "GroupedModel",
    "Group",
    "GroupCooperation",
    "GroupReference",
    "parse_gpepa",
    "fluid_trajectory",
    "fluid_rhs",
    "FluidTrajectory",
    "action_throughput_series",
    "reward_series",
    "gssa_trajectory",
    "gssa_ensemble",
    "GssaTrajectory",
    "GssaEnsemble",
    "lna_trajectory",
    "LnaTrajectory",
    "client_server_scalability_source",
    "client_server_power_source",
    "client_server_scalability",
    "client_server_power",
]
