"""Stochastic simulation of grouped PEPA models.

GPAnalyser offers stochastic simulation alongside fluid analysis; the
population process of a grouped model is a CTMC whose transition
propensities are exactly the fluid flow terms evaluated at integer
counts (min-cooperation shares included).  The model lowers to
:class:`repro.ir.ReactionIR` (:mod:`repro.gpepa.lower`) and the shared
``ssa`` backend does the stepping, giving:

* single trajectories (:func:`gssa_trajectory`) — jump paths of the
  population process;
* ensembles (:func:`gssa_ensemble`) — streaming mean/variance, the
  stochastic counterpart the fluid mean is validated against (the
  ensemble mean converges to the fluid solution as populations grow).

Ensembles follow the engine's determinism contract: one
``SeedSequence(seed)`` child per realization, fixed chunk boundaries,
bit-identical under ``engine.parallel`` fan-out; ``var`` is the
unbiased sample variance (``ddof=1``).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GPepaError, reraise_ir_errors
from repro.gpepa.lower import lower_reactions
from repro.gpepa.model import GroupedModel
from repro.ir import solve

__all__ = ["gssa_trajectory", "gssa_ensemble", "GssaTrajectory", "GssaEnsemble"]


@dataclass(frozen=True)
class GssaTrajectory:
    """One realization of the population jump process on a fixed grid."""

    model: GroupedModel
    times: np.ndarray
    counts: np.ndarray
    n_events: int

    def of(self, group: str, derivative: str) -> np.ndarray:
        return self.counts[:, self.model.index_of(group, derivative)]


@dataclass(frozen=True)
class GssaEnsemble:
    """Streaming mean/variance over many realizations."""

    model: GroupedModel
    times: np.ndarray
    mean: np.ndarray
    var: np.ndarray
    n_runs: int
    meta: dict = field(default_factory=dict, compare=False)

    def mean_of(self, group: str, derivative: str) -> np.ndarray:
        return self.mean[:, self.model.index_of(group, derivative)]

    def var_of(self, group: str, derivative: str) -> np.ndarray:
        return self.var[:, self.model.index_of(group, derivative)]


def gssa_trajectory(
    model: GroupedModel,
    times: Sequence[float],
    seed: int | np.random.Generator = 0,
    max_events: int = 5_000_000,
) -> GssaTrajectory:
    """Simulate one jump path of the grouped population process.

    Requires integer initial counts (the jump process lives on the
    lattice); raises :class:`repro.errors.GPepaError` otherwise.
    """
    with reraise_ir_errors(GPepaError):
        traj = solve(
            lower_reactions(model),
            "ssa",
            times=times,
            seed=seed,
            max_events=max_events,
        )
    return GssaTrajectory(
        model=model, times=traj.times, counts=traj.counts, n_events=traj.n_events
    )


def gssa_ensemble(
    model: GroupedModel,
    times: Sequence[float],
    n_runs: int = 100,
    seed: int = 0,
) -> GssaEnsemble:
    """Streaming mean/variance over ``n_runs`` independent realizations.

    Realization ``i`` is driven by the ``i``-th ``SeedSequence(seed)``
    child, so the result is a pure function of ``(model, times, n_runs,
    seed)`` and reproduces bit-identically under ``engine.parallel``.
    """
    with reraise_ir_errors(GPepaError):
        ens = solve(
            lower_reactions(model),
            "ssa",
            mode="ensemble",
            times=times,
            n_runs=n_runs,
            seed=seed,
        )
    return GssaEnsemble(
        model=model,
        times=ens.times,
        mean=ens.mean,
        var=ens.var,
        n_runs=n_runs,
        meta=dict(ens.meta),
    )
