"""Stochastic simulation of grouped PEPA models.

GPAnalyser offers stochastic simulation alongside fluid analysis; the
population process of a grouped model is a CTMC whose transition
propensities are exactly the fluid flow terms evaluated at integer
counts (min-cooperation shares included).  This module reuses the
compiled flow plans from :mod:`repro.gpepa.fluid` inside a Gillespie
loop, giving:

* single trajectories (:func:`gssa_trajectory`) — jump paths of the
  population process;
* ensembles (:func:`gssa_ensemble`) — streaming mean/variance, the
  stochastic counterpart the fluid mean is validated against (the
  ensemble mean converges to the fluid solution as populations grow).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import GPepaError
from repro.gpepa.fluid import _FluidSystem, _plan_rate
from repro.gpepa.model import GroupedModel

__all__ = ["gssa_trajectory", "gssa_ensemble", "GssaTrajectory", "GssaEnsemble"]


@dataclass(frozen=True)
class GssaTrajectory:
    """One realization of the population jump process on a fixed grid."""

    model: GroupedModel
    times: np.ndarray
    counts: np.ndarray
    n_events: int

    def of(self, group: str, derivative: str) -> np.ndarray:
        return self.counts[:, self.model.index_of(group, derivative)]


@dataclass(frozen=True)
class GssaEnsemble:
    """Streaming mean/variance over many realizations."""

    model: GroupedModel
    times: np.ndarray
    mean: np.ndarray
    var: np.ndarray
    n_runs: int

    def mean_of(self, group: str, derivative: str) -> np.ndarray:
        return self.mean[:, self.model.index_of(group, derivative)]

    def var_of(self, group: str, derivative: str) -> np.ndarray:
        return self.var[:, self.model.index_of(group, derivative)]


def _transition_propensities(plans, x: np.ndarray):
    """Per-transition propensities at counts ``x``.

    Returns parallel lists: propensity, source index, target index.
    Mirrors ``_plan_apply`` but collects per-transition terms instead of
    accumulating net flows.
    """
    props: list[float] = []
    srcs: list[int] = []
    tgts: list[int] = []

    def walk(plan, scale: float) -> None:
        if scale == 0.0:
            return
        if plan[0] == "leaf":
            _tag, src, tgt, rates = plan
            for k in range(src.size):
                a = float(x[src[k]] * rates[k] * scale)
                if a > 0.0:
                    props.append(a)
                    srcs.append(int(src[k]))
                    tgts.append(int(tgt[k]))
            return
        _tag, shared, left, right = plan
        if not shared:
            walk(left, scale)
            walk(right, scale)
            return
        rl = _plan_rate(left, x)
        rr = _plan_rate(right, x)
        granted = min(rl, rr) * scale
        walk(left, 0.0 if rl == 0.0 else granted / rl)
        walk(right, 0.0 if rr == 0.0 else granted / rr)

    for plan in plans:
        walk(plan, 1.0)
    return props, srcs, tgts


def gssa_trajectory(
    model: GroupedModel,
    times: Sequence[float],
    seed: int | np.random.Generator = 0,
    max_events: int = 5_000_000,
) -> GssaTrajectory:
    """Simulate one jump path of the grouped population process.

    Requires integer initial counts (the jump process lives on the
    lattice); raises :class:`repro.errors.GPepaError` otherwise.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    grid = np.asarray(times, dtype=np.float64)
    if grid.ndim != 1 or grid.size < 1:
        raise GPepaError("simulation needs a non-empty time grid")
    if (np.diff(grid) <= 0).any():
        raise GPepaError("simulation time grid must be strictly increasing")
    x = model.initial_state()
    if not np.allclose(x, np.round(x)):
        raise GPepaError("stochastic simulation requires integer initial counts")
    x = np.round(x)
    system = _FluidSystem(model)
    plans = list(system.plans.values())
    out = np.empty((grid.size, x.size))
    out[0] = x
    t = float(grid[0])
    cursor = 1
    events = 0
    while cursor < grid.size:
        props, srcs, tgts = _transition_propensities(plans, x)
        total = float(sum(props))
        if total == 0.0:
            out[cursor:] = x
            break
        t += rng.exponential(1.0 / total)
        while cursor < grid.size and grid[cursor] <= t:
            out[cursor] = x
            cursor += 1
        if cursor >= grid.size:
            break
        u = rng.random() * total
        acc = 0.0
        chosen = len(props) - 1
        for k, a in enumerate(props):
            acc += a
            if u <= acc:
                chosen = k
                break
        x = x.copy()
        x[srcs[chosen]] -= 1.0
        x[tgts[chosen]] += 1.0
        events += 1
        if events > max_events:
            raise GPepaError(f"simulation exceeded {max_events} events before the horizon")
    return GssaTrajectory(model=model, times=grid, counts=out, n_events=events)


def gssa_ensemble(
    model: GroupedModel,
    times: Sequence[float],
    n_runs: int = 100,
    seed: int = 0,
) -> GssaEnsemble:
    """Streaming mean/variance over ``n_runs`` independent realizations."""
    if n_runs < 1:
        raise GPepaError("ensemble needs at least one run")
    rng = np.random.default_rng(seed)
    grid = np.asarray(times, dtype=np.float64)
    mean = np.zeros((grid.size, model.n_states))
    m2 = np.zeros_like(mean)
    for k in range(1, n_runs + 1):
        traj = gssa_trajectory(model, grid, seed=rng)
        delta = traj.counts - mean
        mean += delta / k
        m2 += delta * (traj.counts - mean)
    var = m2 / n_runs if n_runs > 1 else np.zeros_like(m2)
    return GssaEnsemble(model=model, times=grid, mean=mean, var=var, n_runs=n_runs)
