"""Reward evaluation over fluid trajectories.

GPAnalyser's analyses attach rewards to populations and action rates:
the client/server scalability example rewards servers for satisfying
requests, the power-consumption example weighs server states by wattage.
Both reduce to linear functionals over the fluid state plus action-rate
series, provided here.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.gpepa.fluid import FluidTrajectory, _FluidSystem, _plan_rate

__all__ = ["action_throughput_series", "reward_series", "integrated_reward"]


def action_throughput_series(traj: FluidTrajectory, action: str) -> np.ndarray:
    """Global fluid rate of ``action`` at every time point of ``traj``.

    This is the fluid analogue of steady-state throughput: completed
    activities of the action per time unit.
    """
    system = _FluidSystem(traj.model)
    if action not in system.plans:
        raise KeyError(
            f"model has no action {action!r}; actions: {system.actions}"
        )
    plan = system.plans[action]
    return np.array([_plan_rate(plan, x) for x in traj.counts])


def reward_series(
    traj: FluidTrajectory, weights: Mapping[tuple[str, str], float]
) -> np.ndarray:
    """Linear state reward over time: ``sum w[(group, deriv)] * count``.

    Unknown keys raise immediately (catching typos in derivative labels
    beats silently contributing zero).
    """
    w = np.zeros(traj.model.n_states)
    for key, weight in weights.items():
        group, deriv = key
        w[traj.model.index_of(group, deriv)] = weight
    return traj.counts @ w


def integrated_reward(
    traj: FluidTrajectory, weights: Mapping[tuple[str, str], float]
) -> float:
    """Time integral of a linear state reward along the trajectory
    (trapezoidal rule on the trajectory grid)."""
    series = reward_series(traj, weights)
    return float(np.trapezoid(series, traj.times))
