"""Parser for grouped PEPA (``.gpepa``) sources.

Reuses the PEPA lexer and the PEPA parser's definition/rate machinery,
then parses the grouped system equation::

    gsystem ::= gterm { coop_op gterm }            (left-associative)
    gterm   ::= UNAME '{' population '}' | '(' gsystem ')'
    population ::= UNAME '[' NUMBER ']' { '||' UNAME '[' NUMBER ']' }
    coop_op ::= '<' [actions] '>' | '<>' | '||'

Example (the GPAnalyser client/server flavor)::

    rr = 2.0;
    Client = (request, rr).Client_think;
    Client_think = (think, 0.27).Client;
    Server = (request, 4.0).Server_log;
    Server_log = (log, 2.0).Server;
    Clients{Client[100]} <request> Servers{Server[10]}
"""

from __future__ import annotations

from repro.errors import PepaSyntaxError
from repro.gpepa.model import Group, GroupCooperation, GroupReference, GroupedModel
from repro.pepa.lexer import tokenize
from repro.pepa.parser import _Parser
from repro.pepa.syntax import Constant, Model, ProcessDef, RateDef

__all__ = ["parse_gpepa"]


class _GParser(_Parser):
    def __init__(self, tokens, source_name: str):
        super().__init__(tokens)
        self.source_name = source_name
        self.groups: list[Group] = []

    def gsystem(self):
        left = self.gterm()
        while True:
            actions = self._try_coop_op()
            if actions is None:
                return left
            right = self.gterm()
            left = GroupCooperation(left, right, tuple(actions))

    def gterm(self):
        if self.cur.kind == "(":
            self.advance()
            inner = self.gsystem()
            self.expect(")")
            return inner
        label_tok = self.expect("UNAME", "a group label")
        self.expect("{", "'{' opening a group population")
        counts: dict[str, float] = {}
        while True:
            comp = self.expect("UNAME", "a component name").text
            self.expect("[")
            num = self.expect("NUMBER", "an initial count")
            count = float(num.text)
            if count < 0:
                raise PepaSyntaxError(
                    f"negative initial count {num.text}", num.line, num.column
                )
            self.expect("]")
            if comp in counts:
                raise PepaSyntaxError(
                    f"component {comp!r} listed twice in group {label_tok.text!r}",
                    num.line,
                    num.column,
                )
            counts[comp] = count
            if self.cur.kind == "||":
                self.advance()
                continue
            break
        self.expect("}", "'}' closing the group population")
        self.groups.append(Group(label=label_tok.text, initial_counts=counts))
        return GroupReference(label=label_tok.text)

    def grouped_model(self) -> GroupedModel:
        rate_defs: list[RateDef] = []
        proc_defs: list[ProcessDef] = []
        seen: set[str] = set()
        while self.cur.kind in ("LNAME", "UNAME") and self.peek().kind == "=":
            name_tok = self.advance()
            self.advance()  # '='
            if name_tok.text in seen:
                raise PepaSyntaxError(
                    f"duplicate definition of {name_tok.text!r}",
                    name_tok.line,
                    name_tok.column,
                )
            seen.add(name_tok.text)
            if name_tok.kind == "LNAME":
                rate_defs.append(RateDef(name_tok.text, self.rate_expr()))
            else:
                proc_defs.append(ProcessDef(name_tok.text, self.coop()))
            self.expect(";", "';' after definition")
        if self.cur.kind == "EOF":
            raise self.error("grouped model has no system equation")
        system = self.gsystem()
        if self.cur.kind == ";":
            self.advance()
        self.expect("EOF", "end of model")
        # The definitions Model needs *a* system equation; use the first
        # component of the first group (it is never derived from).
        placeholder = Constant(next(iter(self.groups[0].initial_counts)))
        definitions = Model(
            tuple(rate_defs), tuple(proc_defs), placeholder, self.source_name
        )
        return GroupedModel(
            definitions=definitions,
            groups=self.groups,
            system=system,
            source_name=self.source_name,
        )


def parse_gpepa(source: str, source_name: str = "<gpepa>") -> GroupedModel:
    """Parse grouped-PEPA source text into a :class:`GroupedModel`."""
    return _GParser(tokenize(source), source_name).grouped_model()
