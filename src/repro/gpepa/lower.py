"""Lowering grouped PEPA models to the shared reaction IR.

The Hayden–Bradley fluid semantics compiles, per action, an evaluation
*plan* mirroring the composition tree — leaves carry the group's local
transitions, cooperation nodes apply min (shared action) or sum
(unshared) with normalized-min sharing.  This module owns that compiled
form and packages it as a :class:`repro.ir.ReactionIR`:

* each local transition of each action's plan becomes one *reaction*
  with stoichiometry ``-1`` source / ``+1`` target (self-loops give a
  zero column: a no-op firing that still consumes RNG draws, exactly
  like the pre-IR simulator);
* :class:`PlanPropensities` evaluates the throttled per-transition
  flows into the fixed reaction slots (``sampler="scan"`` preserves
  GPEPA's RNG discipline: zero-propensity slots neither accumulate nor
  fire);
* :class:`PlanRhs` is the fluid right-hand side — the net flows are
  *not* a plain ``N @ v(x)`` once min-sharing throttles subtrees, so
  the IR carries it as a custom ``rhs``.

Both callables are small classes (not closures) so ensemble fan-out can
pickle them onto a process pool.
"""

from __future__ import annotations

import numpy as np

from repro.gpepa.model import GroupCooperation, GroupReference, GroupedModel, LocalRate
from repro.gpepa.wellformed import check_model
from repro.ir import ReactionIR

__all__ = [
    "lower_reactions",
    "model_token",
    "BatchPlanPropensities",
    "PlanPropensities",
    "PlanRhs",
]


def _group_flows(
    model: GroupedModel, label: str, action: str
) -> list[LocalRate]:
    return [t for t in model.transitions if t.group == label and t.action == action]


class _FluidSystem:
    """Pre-compiled flow structure: for each action, the tree of flow
    lists, so the RHS evaluation allocates nothing per step beyond the
    numpy temporaries."""

    def __init__(self, model: GroupedModel):
        self.model = model
        self.actions = sorted(model.actions)
        # Per action: evaluation plan as a nested structure mirroring the
        # composition tree; leaves carry (src_indices, tgt_indices, rates).
        self.plans = {a: self._compile(model.system, a) for a in self.actions}

    def _compile(self, node, action: str):
        if isinstance(node, GroupReference):
            flows = _group_flows(self.model, node.label, action)
            src = np.array([f.source for f in flows], dtype=np.intp)
            tgt = np.array([f.target for f in flows], dtype=np.intp)
            rates = np.array([f.rate for f in flows], dtype=np.float64)
            return ("leaf", src, tgt, rates)
        assert isinstance(node, GroupCooperation)
        left = self._compile(node.left, action)
        right = self._compile(node.right, action)
        shared = action in node.actions
        return ("coop", shared, left, right)


def _plan_rate(plan, x: np.ndarray) -> float:
    """Unthrottled apparent rate of a compiled subtree.

    Works on plain and slot-decorated plans alike (the leaf's extra
    slot offset sits past the fields read here).
    """
    if plan[0] == "leaf":
        src, rates = plan[1], plan[3]
        if src.size == 0:
            return 0.0
        return float(np.dot(x[src], rates))
    _tag, shared, left, right = plan[0], plan[1], plan[2], plan[3]
    rl = _plan_rate(left, x)
    rr = _plan_rate(right, x)
    return min(rl, rr) if shared else rl + rr


def _plan_apply(plan, x: np.ndarray, dx: np.ndarray, scale: float) -> None:
    """Accumulate throttled flows into ``dx``.

    ``scale`` is the ratio of the rate granted from above to this
    subtree's own apparent rate (1.0 when unthrottled).
    """
    if scale == 0.0:
        return
    if plan[0] == "leaf":
        _tag, src, tgt, rates = plan
        if src.size == 0:
            return
        flow = x[src] * rates * scale
        np.subtract.at(dx, src, flow)
        np.add.at(dx, tgt, flow)
        return
    _tag, shared, left, right = plan
    if not shared:
        _plan_apply(left, x, dx, scale)
        _plan_apply(right, x, dx, scale)
        return
    rl = _plan_rate(left, x)
    rr = _plan_rate(right, x)
    granted = min(rl, rr) * scale
    _plan_apply(left, x, dx, 0.0 if rl == 0.0 else granted / rl)
    _plan_apply(right, x, dx, 0.0 if rr == 0.0 else granted / rr)


def _decorate(plan, counter: list[int]):
    """Assign a contiguous slot range to every leaf, depth-first
    left-to-right — the canonical reaction order of the lowering."""
    if plan[0] == "leaf":
        _tag, src, tgt, rates = plan
        start = counter[0]
        counter[0] += src.size
        return ("leaf", src, tgt, rates, start)
    _tag, shared, left, right = plan
    return ("coop", shared, _decorate(left, counter), _decorate(right, counter))


def _fill(plan, x: np.ndarray, out: np.ndarray, scale: float) -> None:
    """Write throttled per-transition flows into their fixed slots.

    Mirrors ``_plan_apply``'s traversal exactly; subtrees whose granted
    scale is zero are skipped, leaving their slots at 0.0 — which the
    ``scan`` sampler neither accumulates nor fires, so the RNG stream
    matches the positive-only scan of the pre-IR simulator.
    """
    if scale == 0.0:
        return
    if plan[0] == "leaf":
        _tag, src, _tgt, rates, start = plan
        if src.size == 0:
            return
        out[start : start + src.size] = x[src] * rates * scale
        return
    _tag, shared, left, right = plan
    if not shared:
        _fill(left, x, out, scale)
        _fill(right, x, out, scale)
        return
    rl = _plan_rate(left, x)
    rr = _plan_rate(right, x)
    granted = min(rl, rr) * scale
    _fill(left, x, out, 0.0 if rl == 0.0 else granted / rl)
    _fill(right, x, out, 0.0 if rr == 0.0 else granted / rr)


def _transition_propensities(plans, x: np.ndarray):
    """Per-transition propensities at counts ``x`` (positive terms only).

    Returns parallel lists: propensity, source index, target index.
    Mirrors ``_plan_apply`` but collects per-transition terms instead of
    accumulating net flows; the LNA diffusion term sums outer products
    over these.
    """
    props: list[float] = []
    srcs: list[int] = []
    tgts: list[int] = []

    def walk(plan, scale: float) -> None:
        if scale == 0.0:
            return
        if plan[0] == "leaf":
            src, tgt, rates = plan[1], plan[2], plan[3]
            for k in range(src.size):
                a = float(x[src[k]] * rates[k] * scale)
                if a > 0.0:
                    props.append(a)
                    srcs.append(int(src[k]))
                    tgts.append(int(tgt[k]))
            return
        _tag, shared, left, right = plan[0], plan[1], plan[2], plan[3]
        if not shared:
            walk(left, scale)
            walk(right, scale)
            return
        rl = _plan_rate(left, x)
        rr = _plan_rate(right, x)
        granted = min(rl, rr) * scale
        walk(left, 0.0 if rl == 0.0 else granted / rl)
        walk(right, 0.0 if rr == 0.0 else granted / rr)

    for plan in plans:
        walk(plan, 1.0)
    return props, srcs, tgts


def _leaves(plan):
    """Leaf ``(src, tgt)`` arrays in slot-assignment order."""
    if plan[0] == "leaf":
        yield plan[1], plan[2]
        return
    yield from _leaves(plan[2])
    yield from _leaves(plan[3])


class PlanPropensities:
    """Per-transition propensities at counts ``x``, in fixed slots."""

    def __init__(self, model: GroupedModel):
        system = _FluidSystem(model)
        counter = [0]
        self.plans = tuple(
            _decorate(system.plans[a], counter) for a in system.actions
        )
        self.n_slots = counter[0]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = np.zeros(self.n_slots)
        for plan in self.plans:
            _fill(plan, x, out, 1.0)
        return out


def _rate_batch(plan, states: np.ndarray) -> np.ndarray:
    """Batched :func:`_plan_rate`: apparent rates for every batch row.

    Only valid on plans whose every leaf has at most one transition —
    a one-element ``np.dot`` is a single multiply, so the batched
    column equals the scalar dot bit for bit.  Multi-transition leaves
    would route through BLAS ``ddot``, whose accumulation order is not
    replicable elementwise.
    """
    if plan[0] == "leaf":
        src, rates = plan[1], plan[3]
        if src.size == 0:
            return np.zeros(states.shape[0])
        return states[:, src[0]] * rates[0]
    _tag, shared, left, right = plan[0], plan[1], plan[2], plan[3]
    rl = _rate_batch(left, states)
    rr = _rate_batch(right, states)
    return np.minimum(rl, rr) if shared else rl + rr


def _fill_batch(plan, states: np.ndarray, out: np.ndarray, scale: np.ndarray) -> None:
    """Batched :func:`_fill`: ``scale`` carries one granted ratio per row.

    Rows whose scale is zero keep their slots at 0.0 (`np.where`), which
    is exactly the scalar traversal's early return on ``scale == 0.0``.
    """
    if not scale.any():
        return
    if plan[0] == "leaf":
        _tag, src, _tgt, rates, start = plan
        if src.size == 0:
            return
        col = states[:, src[0]] * rates[0] * scale
        out[:, start] = np.where(scale == 0.0, 0.0, col)
        return
    _tag, shared, left, right = plan
    if not shared:
        _fill_batch(left, states, out, scale)
        _fill_batch(right, states, out, scale)
        return
    rl = _rate_batch(left, states)
    rr = _rate_batch(right, states)
    granted = np.minimum(rl, rr) * scale
    with np.errstate(divide="ignore", invalid="ignore"):
        _fill_batch(left, states, out, np.where(rl == 0.0, 0.0, granted / rl))
        _fill_batch(right, states, out, np.where(rr == 0.0, 0.0, granted / rr))


def _batchable(plan) -> bool:
    """Whether every leaf has at most one transition (see `_rate_batch`)."""
    if plan[0] == "leaf":
        return plan[1].size <= 1
    return _batchable(plan[2]) and _batchable(plan[3])


class BatchPlanPropensities:
    """Batched propensity matrix ``V(X) -> (B, n_slots)``.

    Shares the slot-decorated plans of a :class:`PlanPropensities` and
    produces, row by row, exactly its output — attached to the IR only
    when :func:`_batchable` holds for every action plan.
    """

    def __init__(self, scalar: PlanPropensities):
        self.plans = scalar.plans
        self.n_slots = scalar.n_slots

    def __call__(self, states: np.ndarray) -> np.ndarray:
        out = np.zeros((states.shape[0], self.n_slots))
        ones = np.ones(states.shape[0])
        for plan in self.plans:
            _fill_batch(plan, states, out, ones)
        return out


class PlanRhs:
    """The fluid ODE right-hand side ``f(t, x) -> dx/dt``."""

    def __init__(self, model: GroupedModel):
        system = _FluidSystem(model)
        self.plans = tuple(system.plans.values())
        self.n_states = model.n_states

    def __call__(self, _t: float, x: np.ndarray) -> np.ndarray:
        # Negative excursions from integrator round-off are clamped so
        # apparent rates stay physical.
        xc = np.clip(x, 0.0, None)
        dx = np.zeros(self.n_states)
        for plan in self.plans:
            _plan_apply(plan, xc, dx, 1.0)
        return dx


def model_token(model: GroupedModel) -> tuple:
    """Canonically hashable identity of the model's dynamics.

    ``GroupedModel`` is a mutable builder class, so the cache token is a
    structural digest: state coordinates, local transitions, composition
    tree and initial counts determine every analysis result.
    """
    return (
        "gpepa",
        tuple(model.state_names),
        model.transitions,
        model.system,
        tuple(float(v) for v in model.initial_state()),
    )


def lower_reactions(model: GroupedModel, strict: bool = True) -> ReactionIR:
    """Lower the grouped model's population dynamics to a
    :class:`~repro.ir.ReactionIR` (memoized on the model).

    Well-formedness is checked on first lowering (errors raise);
    ``strict=False`` demotes errors to warnings.
    """
    memo = getattr(model, "_reaction_ir", None)
    if memo is not None:
        return memo
    check_model(model, strict=strict)
    system = _FluidSystem(model)
    names: list[str] = []
    sources: list[int] = []
    targets: list[int] = []
    for action in system.actions:
        for src, tgt in _leaves(system.plans[action]):
            for k in range(src.size):
                s, t = int(src[k]), int(tgt[k])
                g_src, d_src = model.state_names[s]
                _g_tgt, d_tgt = model.state_names[t]
                names.append(f"{action}:{g_src}.{d_src}->{d_tgt}")
                sources.append(s)
                targets.append(t)
    N = np.zeros((model.n_states, len(names)))
    for j, (s, t) in enumerate(zip(sources, targets)):
        N[s, j] -= 1.0
        N[t, j] += 1.0
    propensities = PlanPropensities(model)
    batch = (
        BatchPlanPropensities(propensities)
        if all(_batchable(plan) for plan in propensities.plans)
        else None
    )
    ir = ReactionIR(
        species=tuple(f"{g}.{d}" for g, d in model.state_names),
        initial=model.initial_state(),
        stoichiometry=N,
        reaction_names=tuple(names),
        propensities=propensities,
        rhs=PlanRhs(model),
        batch_propensities=batch,
        sampler="scan",
        token=model_token(model),
    )
    model._reaction_ir = ir
    return ir
