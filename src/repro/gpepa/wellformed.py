"""Static well-formedness analysis of grouped PEPA models.

The GPEPA analogue of :mod:`repro.pepa.wellformed`, run against the
analyzed :class:`~repro.gpepa.model.GroupedModel` (whose constructor
already rejects unbound group references, duplicate labels and passive
rates) —

* no local transition has a negative rate (error) or zero rate
  (warning — a dead transition);
* every group has positive total population (warning otherwise — its
  subtree contributes nothing to the dynamics);
* every cooperation-set action is performable by *both* subtrees
  (warning — a one-sided shared action is throttled to zero and blocks
  forever; an action in neither alphabet is dead weight);
* absorbing local derivatives — states mass can enter but never leave
  (warning: legitimate in terminating protocols, fatal for steady-state
  questions).

``check_model(model)`` raises on errors and returns the warnings;
``check_model(model, strict=False)`` demotes errors to warnings — the
escape hatch :func:`repro.gpepa.lower.lower_reactions` exposes.
"""

from __future__ import annotations

from repro.errors import FluidSemanticsError
from repro.gpepa.model import GroupCooperation, GroupedModel, GroupReference

__all__ = ["check_model"]


def _subtree_actions(model: GroupedModel, node) -> set[str]:
    """All actions the groups under ``node`` can perform."""
    if isinstance(node, GroupReference):
        return {t.action for t in model.transitions if t.group == node.label}
    assert isinstance(node, GroupCooperation)
    return _subtree_actions(model, node.left) | _subtree_actions(model, node.right)


def check_model(model: GroupedModel, strict: bool = True) -> list[str]:
    """Validate a grouped model statically.

    Returns warnings; raises on errors unless ``strict=False``, in which
    case errors are appended to the returned warnings instead.
    """
    warnings: list[str] = []

    for t in model.transitions:
        src_group, src_label = model.state_names[t.source]
        if t.rate < 0:
            message = (
                f"transition {src_group}.{src_label} --{t.action}--> has "
                f"negative rate {t.rate}"
            )
            if strict:
                raise FluidSemanticsError(message)
            warnings.append(message)
        elif t.rate == 0:
            warnings.append(
                f"transition {src_group}.{src_label} --{t.action}--> has "
                "zero rate and can never fire"
            )

    for label in model.groups:
        if model.group_total(label) == 0:
            warnings.append(
                f"group {label!r} has zero total population; its subtree "
                "contributes nothing"
            )

    def walk(node) -> None:
        if isinstance(node, GroupReference):
            return
        assert isinstance(node, GroupCooperation)
        left = _subtree_actions(model, node.left)
        right = _subtree_actions(model, node.right)
        for action in node.actions:
            if action not in left and action not in right:
                warnings.append(
                    f"cooperation action {action!r} is in neither "
                    "cooperand's alphabet"
                )
            elif action not in left or action not in right:
                warnings.append(
                    f"cooperation action {action!r} can only be performed "
                    "by one cooperand and will block forever"
                )
        walk(node.left)
        walk(node.right)

    walk(model.system)

    # Absorbing derivatives: reachable (some transition targets them)
    # but with no outgoing transition of their own.
    has_exit = {t.source for t in model.transitions}
    entered = {t.target for t in model.transitions}
    for idx in sorted(entered - has_exit):
        group, label = model.state_names[idx]
        warnings.append(
            f"derivative {group}.{label} is absorbing (mass can enter "
            "but never leave)"
        )

    return warnings
