"""Linear noise approximation (LNA) for grouped PEPA models.

GPAnalyser's headline capability beyond fluid means is *moments*:
variances and covariances of the population process.  The linear noise
approximation expands the population CTMC around its fluid limit:

    dμ/dt = F(μ)                                  (the fluid ODE)
    dΣ/dt = J(μ) Σ + Σ J(μ)ᵀ + D(μ)

where ``J`` is the Jacobian of the fluid drift ``F`` and the diffusion
matrix ``D(x) = Σ_k v_k v_kᵀ a_k(x)`` sums the outer products of the
transition change vectors weighted by their propensities.

The drift and propensities reuse the compiled flow plans of
:mod:`repro.gpepa.fluid` (min-cooperation included); the Jacobian is a
central finite difference, which is exact off the ``min`` switching
surfaces and a one-sided approximation on them — the same caveat GPA's
piecewise analysis documents.  Validation: LNA variances track the
Gillespie ensemble (`tests/gpepa/test_lna.py`) and shrink like ``1/N``
relative to the population.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import GPepaError
from repro.gpepa.fluid import _FluidSystem, fluid_rhs
from repro.gpepa.model import GroupedModel
from repro.gpepa.lower import _transition_propensities
from repro.numerics.ode import integrate_ode

__all__ = ["lna_trajectory", "LnaTrajectory"]


@dataclass(frozen=True)
class LnaTrajectory:
    """Mean and covariance of the population process over time.

    Attributes
    ----------
    mean:
        ``(len(times), n)`` fluid means.
    covariance:
        ``(len(times), n, n)`` LNA covariance matrices.
    """

    model: GroupedModel
    times: np.ndarray
    mean: np.ndarray
    covariance: np.ndarray

    def mean_of(self, group: str, derivative: str) -> np.ndarray:
        return self.mean[:, self.model.index_of(group, derivative)]

    def var_of(self, group: str, derivative: str) -> np.ndarray:
        i = self.model.index_of(group, derivative)
        return self.covariance[:, i, i]

    def std_of(self, group: str, derivative: str) -> np.ndarray:
        return np.sqrt(np.clip(self.var_of(group, derivative), 0.0, None))

    def covariance_of(
        self, a: tuple[str, str], b: tuple[str, str]
    ) -> np.ndarray:
        i = self.model.index_of(*a)
        j = self.model.index_of(*b)
        return self.covariance[:, i, j]


def _diffusion(plans, x: np.ndarray, n: int) -> np.ndarray:
    """D(x) = Σ_k v_k v_kᵀ a_k(x) for unit change vectors e_tgt - e_src."""
    props, srcs, tgts = _transition_propensities(plans, x)
    D = np.zeros((n, n))
    for a, s, t in zip(props, srcs, tgts):
        # v v^T for v = e_t - e_s has four non-zero entries.
        D[s, s] += a
        D[t, t] += a
        D[s, t] -= a
        D[t, s] -= a
    return D


def _jacobian(rhs, x: np.ndarray, h_scale: float = 1e-6) -> np.ndarray:
    """Central-difference Jacobian of the drift at x."""
    n = x.size
    J = np.empty((n, n))
    for j in range(n):
        h = h_scale * max(1.0, abs(x[j]))
        xp = x.copy()
        xm = x.copy()
        xp[j] += h
        xm[j] = max(0.0, xm[j] - h)
        denom = xp[j] - xm[j]
        J[:, j] = (rhs(0.0, xp) - rhs(0.0, xm)) / denom if denom > 0 else 0.0
    return J


def lna_trajectory(
    model: GroupedModel,
    times: Sequence[float],
    rtol: float = 1e-7,
    atol: float = 1e-9,
) -> LnaTrajectory:
    """Integrate the coupled mean/covariance ODEs of the LNA.

    The state vector packs the mean (n entries) with the covariance
    (n² entries); the covariance starts at zero (deterministic initial
    populations).
    """
    grid = np.asarray(times, dtype=np.float64)
    if grid.ndim != 1 or grid.size < 2:
        raise GPepaError("LNA needs a time grid of at least two points")
    n = model.n_states
    drift = fluid_rhs(model)
    system = _FluidSystem(model)
    plans = list(system.plans.values())

    def packed_rhs(t: float, y: np.ndarray) -> np.ndarray:
        mu = np.clip(y[:n], 0.0, None)
        sigma = y[n:].reshape(n, n)
        dmu = drift(t, mu)
        J = _jacobian(drift, mu)
        D = _diffusion(plans, mu, n)
        dsigma = J @ sigma + sigma @ J.T + D
        return np.concatenate([dmu, dsigma.ravel()])

    y0 = np.concatenate([model.initial_state(), np.zeros(n * n)])
    sol = integrate_ode(packed_rhs, y0, grid, rtol=rtol, atol=atol)
    mean = sol[:, :n]
    cov = sol[:, n:].reshape(grid.size, n, n)
    # Symmetrize against integrator round-off.
    cov = 0.5 * (cov + np.transpose(cov, (0, 2, 1)))
    return LnaTrajectory(model=model, times=grid, mean=mean, covariance=cov)
