"""Development-time checks: the import-layering lint.

The refactor to a shared solver IR (:mod:`repro.ir`) only stays a
refactor if the layering it introduced cannot silently erode — e.g. a
frontend growing a private numerical loop again, or ``numerics``
reaching up into a frontend.  This module walks the package with
:mod:`ast` (no imports are executed) and checks every intra-``repro``
import against the architecture's layer ranks::

    0  errors                     (leaf: exception taxonomy)
    1  engine                     (cache, executor, metrics)
    2  numerics                   (linear algebra, ODE, uniformization)
    3  ir                         (MarkovIR / ReactionIR + backends)
    4  pepa, biopepa, gpepa       (frontends; lower() to the IR)
    5  allocation                 (paper case study, on top of pepa)
    6  core                       (container framework, wraps the tools)
    7  experiments                (paper artifacts)
    8  cli                        (entry point)

A module may import strictly *down* the ranks.  Same-rank imports are
forbidden (the frontends must stay independent) except for the
explicitly allowed edges listed in :data:`ALLOWED_EDGES`.

Run as a module for CI: ``python -m repro.devtools`` exits non-zero and
prints one line per violation.
"""

from __future__ import annotations

import ast
import pathlib

__all__ = ["LAYER_RANKS", "ALLOWED_EDGES", "check_import_layering"]

#: Layer rank of every top-level ``repro`` subpackage/module.
LAYER_RANKS: dict[str, int] = {
    "errors": 0,
    "engine": 1,
    "numerics": 2,
    "ir": 3,
    "pepa": 4,
    "biopepa": 4,
    "gpepa": 4,
    "allocation": 5,
    "manifest": 6,
    "core": 6,
    "experiments": 7,
    "service": 7,
    "cli": 8,
    "devtools": 9,
    # The package root docstring imports nothing; rank it above
    # everything so re-exports could never be flagged.
    "__init__": 10,
}

#: Same-rank (or upward) imports that are architecturally intended:
#: GPEPA is grouped *PEPA* — its parser and model reuse the PEPA
#: component grammar.
ALLOWED_EDGES: frozenset[tuple[str, str]] = frozenset({("gpepa", "pepa")})


def _top_level(module: str) -> str | None:
    """The ``repro`` subpackage a dotted import path lands in."""
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def _imported_repro_packages(tree: ast.AST) -> list[tuple[int, str]]:
    """``(lineno, subpackage)`` for every intra-``repro`` import."""
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = _top_level(alias.name)
                if target is not None:
                    found.append((node.lineno, target))
        elif isinstance(node, ast.ImportFrom):
            # Relative imports (level > 0) stay inside their own
            # subpackage by construction; only absolute paths can
            # cross layers.
            if node.level == 0 and node.module:
                target = _top_level(node.module)
                if target is not None:
                    found.append((node.lineno, target))
    return found


def check_import_layering(package_root: str | pathlib.Path | None = None) -> list[str]:
    """Lint the package's import graph against :data:`LAYER_RANKS`.

    Returns one human-readable message per violation (empty list =
    clean).  Unknown subpackages — a new top-level directory nobody
    assigned a rank — are violations too: the architecture must be
    extended deliberately, not by accident.
    """
    if package_root is None:
        package_root = pathlib.Path(__file__).resolve().parent
    root = pathlib.Path(package_root)
    violations: list[str] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        importer = rel.parts[0].removesuffix(".py")
        importer_rank = LAYER_RANKS.get(importer)
        if importer_rank is None:
            violations.append(
                f"{rel}: subpackage {importer!r} has no layer rank; "
                "add it to repro.devtools.LAYER_RANKS"
            )
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, target in _imported_repro_packages(tree):
            if target == importer:
                continue
            target_rank = LAYER_RANKS.get(target)
            if target_rank is None:
                violations.append(
                    f"{rel}:{lineno}: import of unranked subpackage "
                    f"repro.{target}; add it to repro.devtools.LAYER_RANKS"
                )
                continue
            if target_rank < importer_rank or (importer, target) in ALLOWED_EDGES:
                continue
            direction = "upward" if target_rank > importer_rank else "same-layer"
            violations.append(
                f"{rel}:{lineno}: {direction} import repro.{target} "
                f"(rank {target_rank}) from repro.{importer} "
                f"(rank {importer_rank})"
            )
    return violations


def main() -> int:
    problems = check_import_layering()
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} layering violation(s)")
        return 1
    print("import layering clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
