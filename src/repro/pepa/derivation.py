"""PEPA derivation strategies as IR-registry ``derive`` backends.

Importing this module (``repro.pepa`` does it on package import)
registers three strategies plus an auto-selector under the registry's
``derive`` capability, so callers can pick how a PEPA model becomes a
:class:`repro.ir.MarkovIR`::

    from repro.ir import solve
    ir = solve(model, "derive")                      # explicit (default)
    ir = solve(model, "derive", backend="kronecker") # compositional
    ir = solve(model, "derive", backend="auto")      # size heuristic

Backends
--------
``explicit`` (default; aliases ``fast``, ``bfs``)
    The memoized fast path: :func:`repro.pepa.statespace.derive` +
    :func:`repro.pepa.ctmc.ctmc_of` + ``lower()``.  Bit-identical to
    every pre-existing analysis (same state order, same transition
    table, same seeded SSA streams); caching happens in those layers.

``naive`` (alias ``reference``)
    The retained un-memoized reference walk
    (:func:`repro.pepa.statespace.derive_reference`) — the oracle the
    fast path is property-tested against.  Never cached.

``kronecker`` (alias ``compositional``)
    The generalized Kronecker product construction
    (:func:`repro.pepa.kronecker.kronecker_markov_ir`), restricted to
    the reachable component.  State *ordering* differs from explicit
    derivation (mixed-radix product order, no transition table), so use
    it for generator-level analyses, not for seeded-simulation
    reproducibility.  Registry-cached.

``auto``
    Picks ``kronecker`` when the full product space provably fits the
    ``max_states`` budget (see :func:`product_state_bound`), otherwise
    ``explicit``; records the choice under ``derive.auto.*`` metrics.

The capability carries a fallback chain ending in ``explicit`` whose
retry policy treats :class:`~repro.errors.StateSpaceLimitError` as
recoverable: a Kronecker product space that blows the limit degrades to
explicit reachable-only derivation instead of failing the solve.
"""

from __future__ import annotations

from repro.errors import StateSpaceLimitError
from repro.ir import MarkovIR
from repro.ir.registry import (
    RetryPolicy,
    register_backend,
    register_fallback_chain,
)
from repro.pepa.ctmc import ctmc_of
from repro.pepa.kronecker import kronecker_markov_ir
from repro.pepa.semantics import SequentialSemantics
from repro.pepa.statespace import derive, derive_reference
from repro.pepa.syntax import (
    Cooperation,
    Hiding,
    Model,
    ProcessTerm,
    expand_aggregations,
)

__all__ = [
    "derive_explicit",
    "derive_naive",
    "derive_kronecker",
    "derive_auto",
    "product_state_bound",
    "select_derive_backend",
]


def derive_explicit(model: Model, max_states: int = 1_000_000) -> MarkovIR:
    """Explicit BFS derivation (memoized fast path) lowered to the IR."""
    return ctmc_of(derive(model, max_states=max_states)).lower()


def derive_naive(model: Model, max_states: int = 1_000_000) -> MarkovIR:
    """Un-memoized reference derivation lowered to the IR."""
    return ctmc_of(derive_reference(model, max_states=max_states)).lower()


def derive_kronecker(model: Model, max_states: int = 1_000_000) -> MarkovIR:
    """Generalized-Kronecker compositional construction (product order)."""
    return kronecker_markov_ir(model, max_states=max_states)


def product_state_bound(model: Model, cap: int = 10_000_000) -> int | None:
    """Size of the full Kronecker product space, or ``None`` if unknown.

    Multiplies the local-derivative counts of the sequential leaves
    (each bounded by a BFS of its local chain).  Returns ``None`` when
    the bound exceeds ``cap`` or a leaf cannot be walked — both mean
    "do not attempt the compositional construction".
    """
    semantics = SequentialSemantics(model)

    def leaf_terms(term: ProcessTerm) -> list[ProcessTerm]:
        if isinstance(term, Cooperation):
            return leaf_terms(term.left) + leaf_terms(term.right)
        if isinstance(term, Hiding):
            return leaf_terms(term.process)
        return [term]

    bound = 1
    try:
        for initial in leaf_terms(expand_aggregations(model.system)):
            seen = {initial}
            frontier = [initial]
            while frontier:
                term = frontier.pop()
                for tr in semantics.transitions(term):
                    if tr.target not in seen:
                        seen.add(tr.target)
                        frontier.append(tr.target)
                if len(seen) > cap:
                    return None
            bound *= len(seen)
            if bound > cap:
                return None
    except Exception:
        # Ill-formed leaves are diagnosed by the chosen strategy itself,
        # with its proper error; the selector just declines to guess.
        return None
    return bound


def select_derive_backend(model: Model, max_states: int = 1_000_000) -> str:
    """``kronecker`` when the full product space fits ``max_states``,
    else ``explicit``."""
    bound = product_state_bound(model, cap=max_states)
    if bound is not None and bound <= max_states:
        return "kronecker"
    return "explicit"


def derive_auto(model: Model, max_states: int = 1_000_000) -> MarkovIR:
    """Auto-select a derivation strategy by the product-space bound."""
    from repro.engine.metrics import get_registry

    choice = select_derive_backend(model, max_states=max_states)
    get_registry().increment(f"derive.auto.{choice}")
    if choice == "kronecker":
        return derive_kronecker(model, max_states=max_states)
    return derive_explicit(model, max_states=max_states)


def _register() -> None:
    # explicit/naive are not registry-cached: the statespace/ctmc layers
    # already serve them from the content cache, and caching the lowered
    # IR again would only duplicate storage.
    register_backend(
        "derive",
        "explicit",
        derive_explicit,
        accepts=(Model,),
        aliases=("fast", "bfs"),
        cache=False,
        default=True,
    )
    register_backend(
        "derive",
        "naive",
        derive_naive,
        accepts=(Model,),
        aliases=("reference",),
        cache=False,
    )
    register_backend(
        "derive",
        "kronecker",
        derive_kronecker,
        accepts=(Model,),
        aliases=("compositional",),
        cache=True,
    )
    register_backend(
        "derive",
        "auto",
        derive_auto,
        accepts=(Model,),
        cache=False,
    )
    policy = RetryPolicy(
        recoverable=RetryPolicy().recoverable + (StateSpaceLimitError,)
    )
    register_fallback_chain("derive", ("kronecker", "explicit"), policy)


_register()
