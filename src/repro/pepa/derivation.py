"""PEPA derivation strategies as IR-registry ``derive`` backends.

Importing this module (``repro.pepa`` does it on package import)
registers three strategies plus an auto-selector under the registry's
``derive`` capability, so callers can pick how a PEPA model becomes a
:class:`repro.ir.MarkovIR`::

    from repro.ir import solve
    ir = solve(model, "derive")                      # explicit (default)
    ir = solve(model, "derive", backend="kronecker") # compositional
    ir = solve(model, "derive", backend="auto")      # size heuristic

Backends
--------
``explicit`` (default; aliases ``fast``, ``bfs``)
    The memoized fast path: :func:`repro.pepa.statespace.derive` +
    :func:`repro.pepa.ctmc.ctmc_of` + ``lower()``.  Bit-identical to
    every pre-existing analysis (same state order, same transition
    table, same seeded SSA streams); caching happens in those layers.

``naive`` (alias ``reference``)
    The retained un-memoized reference walk
    (:func:`repro.pepa.statespace.derive_reference`) — the oracle the
    fast path is property-tested against.  Never cached.

``kronecker`` (alias ``compositional``)
    The generalized Kronecker product construction
    (:func:`repro.pepa.kronecker.kronecker_markov_ir`), restricted to
    the reachable component.  State *ordering* differs from explicit
    derivation (mixed-radix product order, no transition table), so use
    it for generator-level analyses, not for seeded-simulation
    reproducibility.  Registry-cached.

``population`` (alias ``lumped``)
    Population-form derivation
    (:func:`repro.pepa.population.population_markov_ir`): replicated
    symmetric components are quotiented to orbit representatives
    *during* the BFS, so the chain is the exact ordinary lumping of the
    explicit one and ``max_states`` bounds the aggregated count.  State
    identity differs from explicit (one state per orbit, count-form
    labels), so use it for population-level measures.  Registry-cached;
    carries :class:`repro.ir.markov.OrbitInfo` for the trust layer's
    lumped-derive sentinel.

``auto``
    Picks ``population`` when the model replicates symmetric components
    (see :func:`repro.pepa.population.has_replicated_symmetry`), else
    ``kronecker`` when the full product space provably fits the
    ``max_states`` budget (see :func:`product_state_bound`), otherwise
    ``explicit``; records the choice under ``derive.auto.*`` metrics.

The capability carries a fallback chain ``kronecker -> population ->
explicit`` whose retry policy treats
:class:`~repro.errors.StateSpaceLimitError` as recoverable: a
requested-``population`` derivation that blows the (aggregated) limit
degrades to explicit derivation instead of failing the solve, and a
Kronecker product space that blows the limit walks the rest of the
chain.

The module also registers the ``derive`` shadow hook with the trust
layer: sampled ``population`` derivations are re-derived explicitly
(when the product bound says the explicit space fits) and the lumped
generator is compared against the orbit projection of the explicit one.
"""

from __future__ import annotations

import math

from repro.errors import StateSpaceLimitError
from repro.ir import MarkovIR
from repro.ir.registry import (
    RetryPolicy,
    register_backend,
    register_fallback_chain,
)
from repro.pepa.ctmc import ctmc_of
from repro.pepa.kronecker import kronecker_markov_ir
from repro.pepa.population import (
    has_replicated_symmetry,
    population_markov_ir,
)
from repro.pepa.semantics import SequentialSemantics
from repro.pepa.statespace import derive, derive_reference
from repro.pepa.syntax import (
    Cooperation,
    Hiding,
    Model,
    ProcessTerm,
    expand_aggregations,
)

__all__ = [
    "derive_explicit",
    "derive_naive",
    "derive_kronecker",
    "derive_population",
    "derive_auto",
    "product_state_bound",
    "select_derive_backend",
]


def derive_explicit(model: Model, max_states: int = 1_000_000) -> MarkovIR:
    """Explicit BFS derivation (memoized fast path) lowered to the IR."""
    return ctmc_of(derive(model, max_states=max_states)).lower()


def derive_naive(model: Model, max_states: int = 1_000_000) -> MarkovIR:
    """Un-memoized reference derivation lowered to the IR."""
    return ctmc_of(derive_reference(model, max_states=max_states)).lower()


def derive_kronecker(model: Model, max_states: int = 1_000_000) -> MarkovIR:
    """Generalized-Kronecker compositional construction (product order)."""
    return kronecker_markov_ir(model, max_states=max_states)


def derive_population(model: Model, max_states: int = 1_000_000) -> MarkovIR:
    """Population-form derivation: one state per replica-symmetry orbit."""
    return population_markov_ir(model, max_states=max_states)


def product_state_bound(model: Model, cap: int = 10_000_000) -> int | None:
    """Size of the full Kronecker product space, or ``None`` if unknown.

    Multiplies the local-derivative counts of the sequential leaves
    (each bounded by a BFS of its local chain).  Returns ``None`` when
    the bound exceeds ``cap`` or a leaf cannot be walked — both mean
    "do not attempt the compositional construction".
    """
    semantics = SequentialSemantics(model)

    def leaf_terms(term: ProcessTerm) -> list[ProcessTerm]:
        if isinstance(term, Cooperation):
            return leaf_terms(term.left) + leaf_terms(term.right)
        if isinstance(term, Hiding):
            return leaf_terms(term.process)
        return [term]

    bound = 1
    try:
        for initial in leaf_terms(expand_aggregations(model.system)):
            seen = {initial}
            frontier = [initial]
            while frontier:
                term = frontier.pop()
                for tr in semantics.transitions(term):
                    if tr.target not in seen:
                        seen.add(tr.target)
                        frontier.append(tr.target)
                if len(seen) > cap:
                    return None
            bound *= len(seen)
            if bound > cap:
                return None
    except Exception:
        # Ill-formed leaves are diagnosed by the chosen strategy itself,
        # with its proper error; the selector just declines to guess.
        return None
    return bound


def select_derive_backend(model: Model, max_states: int = 1_000_000) -> str:
    """``population`` when replicated symmetric components exist,
    ``kronecker`` when the full product space fits ``max_states``,
    else ``explicit``."""
    try:
        if has_replicated_symmetry(model):
            return "population"
    except Exception:
        # An unanalyzable structure is diagnosed by the chosen strategy
        # itself; the selector just declines to aggregate.
        pass
    bound = product_state_bound(model, cap=max_states)
    if bound is not None and bound <= max_states:
        return "kronecker"
    return "explicit"


def derive_auto(model: Model, max_states: int = 1_000_000) -> MarkovIR:
    """Auto-select a derivation strategy (symmetry, then size bound)."""
    from repro.engine.metrics import get_registry

    choice = select_derive_backend(model, max_states=max_states)
    get_registry().increment(f"derive.auto.{choice}")
    if choice == "population":
        return derive_population(model, max_states=max_states)
    if choice == "kronecker":
        return derive_kronecker(model, max_states=max_states)
    return derive_explicit(model, max_states=max_states)


#: Shadow re-derivations refuse explicit spaces larger than this bound
#: — the whole point of a population derivation is that the explicit
#: space may be astronomically large.
_SHADOW_EXPLICIT_LIMIT = 20_000


def _derive_shadow_partner(primary: str, model) -> str | None:
    """Shadow partner for sampled ``derive`` dispatches.

    Only population-form derivations are shadowed (the explicit/naive
    pair is already property-tested, and kronecker states are ordered
    differently by design), and only when the full product space
    provably fits a modest budget — otherwise the explicit re-derivation
    the shadow pass would run could itself blow up.
    """
    if primary not in ("population", "lumped"):
        return None
    if not isinstance(model, Model):
        return None
    bound = product_state_bound(model, cap=_SHADOW_EXPLICIT_LIMIT)
    if bound is None:
        return None
    return "explicit"


def _derive_shadow_compare(model, result, shadow_result) -> float:
    """Disagreement between a population derivation and the orbit
    projection of an explicit one (relative max-abs over the lumped
    generator; ``inf`` on structural mismatch).

    The exact-lumping identity under test: with ``A`` the n_exp x n_pop
    0/1 orbit-membership matrix and ``sizes`` the orbit cardinalities,
    ``Q_pop == diag(1/sizes) @ A.T @ Q_exp @ A``.
    """
    import numpy as np
    import scipy.sparse as sp

    from repro.pepa.population import canonical_partition, derive_population

    lumped, explicit_ir = result, shadow_result
    if getattr(lumped, "orbits", None) is None:
        lumped, explicit_ir = explicit_ir, lumped
    info = getattr(lumped, "orbits", None)
    if info is None:
        # Neither side is population-form: plain generator comparison.
        A, B = result.generator, shadow_result.generator
        if A.shape != B.shape:
            return math.inf
        diff = (A - B).tocoo()
        return float(np.abs(diff.data).max()) if diff.nnz else 0.0
    space = derive(model)
    if explicit_ir.n_states != space.size:
        return math.inf
    pop = derive_population(model)
    if lumped.n_states != pop.size:
        return math.inf
    index = {s: i for i, s in enumerate(pop.states)}
    proj = np.fromiter(
        (index.get(k, -1) for k in canonical_partition(model, space)),
        dtype=np.intp,
        count=space.size,
    )
    if proj.size and proj.min() < 0:
        return math.inf
    n, p = space.size, pop.size
    A = sp.csr_matrix(
        (np.ones(n), (np.arange(n), proj)), shape=(n, p)
    )
    sizes = np.asarray(info.orbit_sizes, dtype=np.float64)
    projected = sp.diags(1.0 / sizes) @ (A.T @ explicit_ir.generator @ A)
    diff = (projected - lumped.generator).tocoo()
    if not diff.nnz:
        return 0.0
    scale = max(
        1.0,
        float(np.abs(lumped.generator.data).max())
        if lumped.generator.nnz
        else 1.0,
    )
    return float(np.abs(diff.data).max()) / scale


def _register() -> None:
    # explicit/naive are not registry-cached: the statespace/ctmc layers
    # already serve them from the content cache, and caching the lowered
    # IR again would only duplicate storage.
    register_backend(
        "derive",
        "explicit",
        derive_explicit,
        accepts=(Model,),
        aliases=("fast", "bfs"),
        cache=False,
        default=True,
    )
    register_backend(
        "derive",
        "naive",
        derive_naive,
        accepts=(Model,),
        aliases=("reference",),
        cache=False,
    )
    register_backend(
        "derive",
        "kronecker",
        derive_kronecker,
        accepts=(Model,),
        aliases=("compositional",),
        cache=True,
    )
    register_backend(
        "derive",
        "population",
        derive_population,
        accepts=(Model,),
        aliases=("lumped",),
        cache=True,
    )
    register_backend(
        "derive",
        "auto",
        derive_auto,
        accepts=(Model,),
        cache=False,
    )
    policy = RetryPolicy(
        recoverable=RetryPolicy().recoverable + (StateSpaceLimitError,)
    )
    register_fallback_chain(
        "derive", ("kronecker", "population", "explicit"), policy
    )
    from repro.ir import guards

    guards.register_shadow_hook(
        "derive", _derive_shadow_partner, _derive_shadow_compare
    )


_register()
