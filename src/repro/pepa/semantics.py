"""Structured operational semantics of PEPA.

This module implements the *value* layer of the semantics:

* :class:`ActiveRate` / :class:`PassiveRate` — PEPA rate values.  A
  passive rate ``n * infty`` carries a relative weight ``n``; passive
  participants defer timing to their active cooperation partner.
* Rate-expression evaluation against a model's rate definitions.
* Apparent rates and the cooperation rate law::

      R = (r1 / r_alpha(P)) * (r2 / r_alpha(Q)) * min(r_alpha(P), r_alpha(Q))

* Local transitions of *sequential* components (Prefix / Choice /
  Constant), which is all that changes during evolution — the
  cooperation/hiding structure of a PEPA model is static.

The derivation engine in :mod:`repro.pepa.statespace` composes these
pieces over the static structure tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import (
    CooperationError,
    IllFormedModelError,
    PepaError,
    UnboundConstantError,
    UnboundRateError,
)
from repro.pepa.syntax import (
    Choice,
    Constant,
    Model,
    PassiveLiteral,
    Prefix,
    ProcessTerm,
    RateBinOp,
    RateExpr,
    RateLiteral,
    RateName,
)

__all__ = [
    "TAU",
    "Rate",
    "ActiveRate",
    "PassiveRate",
    "rate_min",
    "rate_sum",
    "cooperation_rate",
    "RateEnvironment",
    "SequentialSemantics",
    "LocalTransition",
]

#: The silent action produced by hiding.
TAU = "tau"


# ---------------------------------------------------------------------------
# Rate values
# ---------------------------------------------------------------------------


class Rate:
    """Base class for evaluated PEPA rates."""

    __slots__ = ()

    @property
    def is_passive(self) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class ActiveRate(Rate):
    """A concrete exponential rate (events per time unit)."""

    value: float

    def __post_init__(self):
        if not self.value > 0:
            raise IllFormedModelError(
                f"activity rates must be strictly positive, got {self.value}"
            )

    @property
    def is_passive(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"ActiveRate({self.value})"


@dataclass(frozen=True)
class PassiveRate(Rate):
    """The passive rate ``w * infty``; ``w`` is a relative weight used to
    split the active partner's apparent rate among passive alternatives."""

    weight: float = 1.0

    def __post_init__(self):
        if not self.weight > 0:
            raise IllFormedModelError(
                f"passive weights must be strictly positive, got {self.weight}"
            )

    @property
    def is_passive(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"PassiveRate({self.weight})"


def rate_sum(a: Rate, b: Rate) -> Rate:
    """Apparent-rate addition.

    Active + active adds values; passive + passive adds weights.  Mixing
    an active and a passive activity of the *same* action type within
    one component is ill-formed in PEPA (the apparent rate would be
    undefined), so it raises :class:`CooperationError`.
    """
    if isinstance(a, ActiveRate) and isinstance(b, ActiveRate):
        return ActiveRate(a.value + b.value)
    if isinstance(a, PassiveRate) and isinstance(b, PassiveRate):
        return PassiveRate(a.weight + b.weight)
    raise CooperationError(
        "a component enables both active and passive activities of the same "
        "action type; the apparent rate is undefined"
    )


def rate_min(a: Rate, b: Rate) -> Rate:
    """Apparent-rate minimum: ``min(r, w*infty) = r`` for any finite r."""
    if isinstance(a, PassiveRate) and isinstance(b, PassiveRate):
        return PassiveRate(min(a.weight, b.weight))
    if isinstance(a, PassiveRate):
        return b
    if isinstance(b, PassiveRate):
        return a
    return ActiveRate(min(a.value, b.value))


def _fraction(part: Rate, whole: Rate) -> float:
    """The dimensionless share ``part / whole`` of an apparent rate."""
    if isinstance(part, ActiveRate) and isinstance(whole, ActiveRate):
        return part.value / whole.value
    if isinstance(part, PassiveRate) and isinstance(whole, PassiveRate):
        return part.weight / whole.weight
    raise CooperationError("cannot mix active and passive rates in one apparent rate")


def cooperation_rate(r1: Rate, ra1: Rate, r2: Rate, ra2: Rate) -> Rate:
    """The PEPA rate of one synchronized transition.

    ``r1``/``r2`` are the individual activity rates, ``ra1``/``ra2`` the
    apparent rates of the same action in each cooperand.  If both sides
    are passive the result stays passive (awaiting an active partner
    further up the cooperation tree).
    """
    shared_min = rate_min(ra1, ra2)
    f1 = _fraction(r1, ra1)
    f2 = _fraction(r2, ra2)
    if isinstance(shared_min, PassiveRate):
        if not (r1.is_passive and r2.is_passive):
            raise CooperationError("inconsistent passive cooperation")
        return PassiveRate(f1 * f2 * shared_min.weight)
    return ActiveRate(f1 * f2 * shared_min.value)


# ---------------------------------------------------------------------------
# Rate-expression evaluation
# ---------------------------------------------------------------------------


class RateEnvironment:
    """Evaluates rate expressions against a model's rate definitions.

    Definitions may reference each other (``r2 = 2 * r1``); reference
    cycles are detected and reported.
    """

    def __init__(self, model: Model):
        self._defs = model.rates
        self._cache: dict[str, Rate] = {}
        self._in_progress: set[str] = set()

    def lookup(self, name: str) -> Rate:
        if name in self._cache:
            return self._cache[name]
        if name not in self._defs:
            raise UnboundRateError(f"rate {name!r} is not defined")
        if name in self._in_progress:
            cycle = " -> ".join(sorted(self._in_progress | {name}))
            raise UnboundRateError(f"cyclic rate definitions involving {cycle}")
        self._in_progress.add(name)
        try:
            value = self.evaluate(self._defs[name])
        finally:
            self._in_progress.discard(name)
        self._cache[name] = value
        return value

    def evaluate(self, expr: RateExpr) -> Rate:
        """Evaluate a rate expression to an :class:`ActiveRate` or
        :class:`PassiveRate`."""
        if isinstance(expr, RateLiteral):
            return ActiveRate(expr.value)
        if isinstance(expr, PassiveLiteral):
            return PassiveRate(expr.weight)
        if isinstance(expr, RateName):
            return self.lookup(expr.name)
        if isinstance(expr, RateBinOp):
            left = self.evaluate(expr.left)
            right = self.evaluate(expr.right)
            return self._apply(expr.op, left, right)
        raise PepaError(f"cannot evaluate rate expression {expr!r}")

    @staticmethod
    def _apply(op: str, left: Rate, right: Rate) -> Rate:
        # Weighted passive: number * infty (either order).
        if op == "*" and isinstance(left, ActiveRate) and isinstance(right, PassiveRate):
            return PassiveRate(left.value * right.weight)
        if op == "*" and isinstance(left, PassiveRate) and isinstance(right, ActiveRate):
            return PassiveRate(left.weight * right.value)
        if isinstance(left, PassiveRate) or isinstance(right, PassiveRate):
            raise IllFormedModelError(
                f"operator {op!r} is not defined on passive rates "
                "(only 'weight * infty' is allowed)"
            )
        a, b = left.value, right.value
        if op == "+":
            return ActiveRate(a + b)
        if op == "-":
            result = a - b
            if result <= 0:
                raise IllFormedModelError(
                    f"rate expression evaluates to non-positive value {result}"
                )
            return ActiveRate(result)
        if op == "*":
            return ActiveRate(a * b)
        if op == "/":
            if b == 0:
                raise IllFormedModelError("division by zero in rate expression")
            return ActiveRate(a / b)
        raise PepaError(f"unknown rate operator {op!r}")


# ---------------------------------------------------------------------------
# Local transitions of sequential components
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LocalTransition:
    """One enabled activity of a sequential component: performing
    ``action`` at ``rate`` moves the component to ``target``."""

    action: str
    rate: Rate
    target: ProcessTerm


class SequentialSemantics:
    """Derives local transitions of sequential PEPA terms.

    Sequential terms are built from Prefix, Choice and Constant only;
    cooperation or hiding nested below a choice/prefix is rejected (the
    standard PEPA restriction that keeps the global structure static).
    """

    def __init__(self, model: Model, max_unfold: int = 10_000):
        self._model = model
        self._rates = RateEnvironment(model)
        self._max_unfold = max_unfold
        self._transitions_cache: dict[ProcessTerm, tuple[LocalTransition, ...]] = {}
        self._grouped_cache: dict[
            ProcessTerm, dict[str, tuple[LocalTransition, ...]]
        ] = {}

    @property
    def rate_environment(self) -> RateEnvironment:
        return self._rates

    def resolve(self, term: ProcessTerm) -> ProcessTerm:
        """Unfold constants until the head of the term is a Prefix or
        Choice, detecting unguarded recursion (``A = B; B = A;``)."""
        seen: list[str] = []
        while isinstance(term, Constant):
            body = self._model.process_body(term.name)
            if body is None:
                raise UnboundConstantError(
                    f"process constant {term.name!r} is not defined"
                )
            if term.name in seen:
                cycle = " = ".join(seen + [term.name])
                raise IllFormedModelError(
                    f"unguarded recursive definition: {cycle}"
                )
            seen.append(term.name)
            if len(seen) > self._max_unfold:
                raise IllFormedModelError("constant unfolding exceeded limit")
            term = body
        return term

    def transitions(self, term: ProcessTerm) -> tuple[LocalTransition, ...]:
        """All activities enabled by a sequential term.

        Constant targets are kept folded (not resolved) so that state
        labels stay human-readable (``Server'`` rather than its body).
        """
        cached = self._transitions_cache.get(term)
        if cached is not None:
            return cached
        result = tuple(self._derive(term, ()))
        self._transitions_cache[term] = result
        return result

    def _derive(self, term: ProcessTerm, trail: tuple[str, ...]):
        if isinstance(term, Prefix):
            yield LocalTransition(term.action, self._rates.evaluate(term.rate), term.continuation)
            return
        if isinstance(term, Choice):
            yield from self._derive(term.left, trail)
            yield from self._derive(term.right, trail)
            return
        if isinstance(term, Constant):
            body = self._model.process_body(term.name)
            if body is None:
                raise UnboundConstantError(
                    f"process constant {term.name!r} is not defined"
                )
            if term.name in trail:
                cycle = " = ".join(trail + (term.name,))
                raise IllFormedModelError(f"unguarded recursive definition: {cycle}")
            yield from self._derive(body, trail + (term.name,))
            return
        raise IllFormedModelError(
            "cooperation/hiding may not occur inside a sequential component "
            f"(offending subterm: {type(term).__name__})"
        )

    def grouped_transitions(
        self, term: ProcessTerm
    ) -> dict[str, tuple[LocalTransition, ...]]:
        """Enabled activities grouped by action type (memoized).

        Group keys appear in first-enablement order and each group keeps
        derivation order, so compositional consumers — the generalized
        Kronecker construction assembles one rate matrix per action —
        stay deterministic without re-sorting.
        """
        cached = self._grouped_cache.get(term)
        if cached is None:
            groups: dict[str, list[LocalTransition]] = {}
            for tr in self.transitions(term):
                groups.setdefault(tr.action, []).append(tr)
            cached = {action: tuple(trs) for action, trs in groups.items()}
            self._grouped_cache[term] = cached
        return cached

    def apparent_rate(self, term: ProcessTerm, action: str) -> Rate | None:
        """Apparent rate of ``action`` in a sequential term, or ``None``
        if the action is not enabled."""
        total: Rate | None = None
        for tr in self.transitions(term):
            if tr.action == action:
                total = tr.rate if total is None else rate_sum(total, tr.rate)
        return total
