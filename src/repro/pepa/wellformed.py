"""Static well-formedness analysis of PEPA models.

``check_model`` performs the checks a user expects before paying for
state-space derivation:

* every referenced process constant and rate name is defined (error);
* recursion through constants is guarded by at least one prefix (error);
* sequential definitions contain no cooperation/hiding (error);
* cooperation sets mention actions both cooperands can actually perform
  (warning — a one-sided action in the set blocks forever);
* hidden actions occur in the hidden subterm's alphabet (warning);
* unused process/rate definitions (warning).

Errors raise; warnings are returned as a list of messages.
"""

from __future__ import annotations

from repro.errors import (
    IllFormedModelError,
    UnboundConstantError,
    UnboundRateError,
)
from repro.pepa.syntax import (
    Aggregation,
    Choice,
    Constant,
    Cooperation,
    Hiding,
    Model,
    PassiveLiteral,
    Prefix,
    ProcessTerm,
    RateBinOp,
    RateExpr,
    RateLiteral,
    RateName,
)

__all__ = ["check_model", "alphabet", "referenced_constants", "referenced_rates"]


def referenced_rates(expr: RateExpr) -> set[str]:
    """Rate names appearing in a rate expression."""
    if isinstance(expr, RateName):
        return {expr.name}
    if isinstance(expr, RateBinOp):
        return referenced_rates(expr.left) | referenced_rates(expr.right)
    return set()


def referenced_constants(term: ProcessTerm) -> set[str]:
    """Process constants appearing anywhere in a term."""
    if isinstance(term, Constant):
        return {term.name}
    if isinstance(term, Prefix):
        return referenced_constants(term.continuation)
    if isinstance(term, Choice):
        return referenced_constants(term.left) | referenced_constants(term.right)
    if isinstance(term, Cooperation):
        return referenced_constants(term.left) | referenced_constants(term.right)
    if isinstance(term, (Hiding, Aggregation)):
        return referenced_constants(term.process)
    return set()


def _term_rates(term: ProcessTerm) -> set[str]:
    if isinstance(term, Prefix):
        return referenced_rates(term.rate) | _term_rates(term.continuation)
    if isinstance(term, Choice):
        return _term_rates(term.left) | _term_rates(term.right)
    if isinstance(term, Cooperation):
        return _term_rates(term.left) | _term_rates(term.right)
    if isinstance(term, (Hiding, Aggregation)):
        return _term_rates(term.process)
    return set()


def alphabet(model: Model, term: ProcessTerm, _seen: frozenset[str] = frozenset()) -> set[str]:
    """All action types a term can ever perform (through constants).

    Hiding removes hidden actions from the visible alphabet (they
    become ``tau``, which is never in a cooperation set).
    """
    if isinstance(term, Prefix):
        return {term.action} | alphabet(model, term.continuation, _seen)
    if isinstance(term, Choice):
        return alphabet(model, term.left, _seen) | alphabet(model, term.right, _seen)
    if isinstance(term, Constant):
        if term.name in _seen:
            return set()
        body = model.process_body(term.name)
        if body is None:
            raise UnboundConstantError(f"process constant {term.name!r} is not defined")
        return alphabet(model, body, _seen | {term.name})
    if isinstance(term, Cooperation):
        return alphabet(model, term.left, _seen) | alphabet(model, term.right, _seen)
    if isinstance(term, Hiding):
        return alphabet(model, term.process, _seen) - set(term.actions)
    if isinstance(term, Aggregation):
        return alphabet(model, term.process, _seen)
    raise IllFormedModelError(f"unknown term {term!r}")


def _check_guarded(model: Model) -> None:
    """Detect definitions like ``A = B; B = A;`` with no guarding prefix."""

    def head_constants(term: ProcessTerm) -> set[str]:
        # Constants reachable without passing through a prefix.
        if isinstance(term, Constant):
            return {term.name}
        if isinstance(term, Choice):
            return head_constants(term.left) | head_constants(term.right)
        if isinstance(term, (Cooperation,)):
            return head_constants(term.left) | head_constants(term.right)
        if isinstance(term, (Hiding, Aggregation)):
            return head_constants(term.process)
        return set()

    graph = {name: head_constants(body) for name, body in model.processes.items()}
    # Iterative DFS cycle detection over the head-reference graph.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}
    for start in graph:
        if color[start] != WHITE:
            continue
        stack = [(start, iter(sorted(graph[start])))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in graph:
                    continue  # unbound; reported separately
                if color[nxt] == GRAY:
                    raise IllFormedModelError(
                        f"unguarded recursive definition through {nxt!r}"
                    )
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()


def check_model(model: Model) -> list[str]:
    """Validate a model statically.  Returns warnings; raises on errors."""
    warnings: list[str] = []

    # Unbound rate names (in definitions and in process bodies).
    defined_rates = set(model.rates)
    used_rates: set[str] = set()
    for rdef in model.rate_defs:
        used_rates |= referenced_rates(rdef.expr)
    for pdef in model.process_defs:
        used_rates |= _term_rates(pdef.body)
    used_rates |= _term_rates(model.system)
    missing_rates = used_rates - defined_rates
    if missing_rates:
        raise UnboundRateError(
            f"undefined rate name(s): {', '.join(sorted(missing_rates))}"
        )

    # Unbound process constants: any reference anywhere must be defined.
    defined_procs = set(model.processes)
    all_refs: set[str] = referenced_constants(model.system)
    for pdef in model.process_defs:
        all_refs |= referenced_constants(pdef.body)
    missing_procs = all_refs - defined_procs
    if missing_procs:
        raise UnboundConstantError(
            f"undefined process constant(s): {', '.join(sorted(missing_procs))}"
        )

    # "Used" means reachable from the system equation (a definition that
    # only references itself is still dead code).
    used_procs: set[str] = set()
    frontier = referenced_constants(model.system)
    while frontier:
        name = frontier.pop()
        if name in used_procs:
            continue
        used_procs.add(name)
        body = model.process_body(name)
        if body is not None:
            frontier |= referenced_constants(body) - used_procs

    _check_guarded(model)

    # Cooperation-set and hiding-set sanity over the system equation.
    def walk(term: ProcessTerm) -> None:
        if isinstance(term, Cooperation):
            la = alphabet(model, term.left)
            ra = alphabet(model, term.right)
            for action in term.actions:
                if action not in la and action not in ra:
                    warnings.append(
                        f"cooperation action {action!r} is in neither cooperand's alphabet"
                    )
                elif action not in la or action not in ra:
                    warnings.append(
                        f"cooperation action {action!r} can only be performed by one "
                        "cooperand and will block forever"
                    )
            walk(term.left)
            walk(term.right)
        elif isinstance(term, Hiding):
            inner = alphabet(model, term.process)
            for action in term.actions:
                if action not in inner:
                    warnings.append(
                        f"hidden action {action!r} does not occur in the hidden subterm"
                    )
            walk(term.process)
        elif isinstance(term, Aggregation):
            walk(term.process)
        elif isinstance(term, Choice):
            walk(term.left)
            walk(term.right)
        elif isinstance(term, Prefix):
            walk(term.continuation)

    walk(model.system)
    for pdef in model.process_defs:
        walk(pdef.body)

    # Unused definitions.
    for name in sorted(defined_procs - used_procs):
        warnings.append(f"process {name!r} is defined but never used")
    for name in sorted(defined_rates - used_rates):
        warnings.append(f"rate {name!r} is defined but never used")

    return warnings
