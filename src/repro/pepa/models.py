"""Bundled classic PEPA models.

The paper validates its PEPA container against example models from the
Edinburgh PEPA collection: the Active Badge model, the Alternating Bit
Protocol model and the PC LAN 4 model, plus the small two-component
model shown in its Fig. 1.  The original Eclipse-plugin sources are no
longer distributed; these are faithful reconstructions of the published
model structures with the rate constants used throughout the PEPA
literature's teaching examples.

Access via :func:`get_source` / :func:`get_model` / :data:`MODEL_NAMES`.
"""

from __future__ import annotations

from repro.pepa.parser import parse_model
from repro.pepa.syntax import Model

__all__ = ["MODEL_NAMES", "get_source", "get_model"]


#: Fig. 1 — the "simple PEPA model" used to validate the container.
SIMPLE_VALIDATION = """\
// Simple two-component validation model (paper Fig. 1).
// A process repeatedly acquires a shared resource to perform task1.
r1 = 1.0;
r2 = 2.0;
s  = 1.5;
Process  = (task1, r1).Process1;
Process1 = (task2, r2).Process;
Resource = (task1, infty).Resource1;
Resource1 = (reset, s).Resource;
Process <task1> Resource
"""

#: The Active Badge model (Clark, Gilmore & Hillston 1999): a person
#: moves through three connected rooms wearing an active badge; room
#: sensors register the badge with a database that tracks the person's
#: last known location.
ACTIVE_BADGE = """\
// Active Badge: person in rooms 1-3, database records last location.
m = 0.2;   // movement rate between adjacent rooms
r = 0.5;   // badge registration rate
P1 = (move12, m).P2 + (reg1, r).P1;
P2 = (move21, m).P1 + (move23, m).P3 + (reg2, r).P2;
P3 = (move32, m).P2 + (reg3, r).P3;
D1 = (reg1, infty).D1 + (reg2, infty).D2 + (reg3, infty).D3;
D2 = (reg1, infty).D1 + (reg2, infty).D2 + (reg3, infty).D3;
D3 = (reg1, infty).D1 + (reg2, infty).D2 + (reg3, infty).D3;
P1 <reg1, reg2, reg3> D1
"""

#: The Alternating Bit Protocol (Edwards 2001): a sender/receiver pair
#: over a lossy channel, alternating a one-bit sequence number, with
#: timeout-driven retransmission.
ALTERNATING_BIT = """\
// Alternating Bit Protocol over a lossy channel.
lam  = 2.0;   // send / resend rate
mu   = 4.0;   // channel delivery rate
loss = 0.5;   // channel loss rate
ack  = 4.0;   // acknowledgement rate
to   = 0.8;   // sender timeout rate
Send0    = (send0, lam).WaitAck0;
WaitAck0 = (ack0, infty).Send1 + (timeout, to).Send0;
Send1    = (send1, lam).WaitAck1;
WaitAck1 = (ack1, infty).Send0 + (timeout, to).Send1;
Chan     = (send0, infty).Deliver0 + (send1, infty).Deliver1;
Deliver0 = (deliver0, mu).Chan + (drop, loss).Chan;
Deliver1 = (deliver1, mu).Chan + (drop, loss).Chan;
Recv0    = (deliver0, infty).Ack0 + (deliver1, infty).Recv0;
Ack0     = (ack0, ack).Recv1;
Recv1    = (deliver1, infty).Ack1 + (deliver0, infty).Recv1;
Ack1     = (ack1, ack).Recv0;
(Send0 <send0, send1> Chan) <deliver0, deliver1, ack0, ack1> Recv0
"""

#: PC LAN 4: four workstations sharing one communication medium; each
#: PC thinks, then competes for the medium to transmit.
PC_LAN_4 = """\
// PC LAN with 4 workstations sharing one medium.
lam = 0.4;   // per-PC think rate
mu  = 5.0;   // medium transmission rate
PC      = (think, lam).PCready;
PCready = (send, infty).PC;
Medium  = (send, mu).Medium;
PC[4] <send> Medium
"""

#: An M/M/2/4 queueing station in PEPA: a bounded buffer of capacity 4
#: fed by arrivals, drained by two parallel servers.  The classic
#: teaching example for comparing PEPA against queueing-network
#: formalisms (§II's "process calculi replaced queueing networks").
MM2_QUEUE = """\
// M/M/2/4: Poisson arrivals, two exponential servers, capacity 4.
// The station is one sequential component whose service rate reflects
// the number of busy servers (mu with one job, 2*mu with two or more).
lam = 3.0;       // arrival rate
mu  = 2.0;       // per-server service rate
mu2 = 2 * mu;    // both servers busy
Buf0 = (arrive, lam).Buf1;
Buf1 = (arrive, lam).Buf2 + (serve, mu).Buf0;
Buf2 = (arrive, lam).Buf3 + (serve, mu2).Buf1;
Buf3 = (arrive, lam).Buf4 + (serve, mu2).Buf2;
Buf4 = (serve, mu2).Buf3;
Buf0
"""

#: The machine breakdown-repair model: a workstation alternates between
#: working and failed states while processing jobs — the minimal
#: availability-modulation pattern the robustness study scales up.
FAULTY_MACHINE = """\
// Breakdown/repair: jobs are processed only while the machine is up.
lam    = 1.0;    // job processing rate
brk    = 0.05;   // breakdown rate
rep    = 0.5;    // repair rate
serveq = 4.0;    // job source rate
Jobs    = (process, serveq).Jobs;
Machine = (process, lam).Machine + (fail, brk).MachineDown;
MachineDown = (repair, rep).Machine;
Jobs <process> Machine
"""

_SOURCES: dict[str, str] = {
    "simple_validation": SIMPLE_VALIDATION,
    "active_badge": ACTIVE_BADGE,
    "alternating_bit": ALTERNATING_BIT,
    "pc_lan_4": PC_LAN_4,
    "mm2_queue": MM2_QUEUE,
    "faulty_machine": FAULTY_MACHINE,
}

#: Names of the bundled models, in documentation order.
MODEL_NAMES: tuple[str, ...] = tuple(_SOURCES)


def get_source(name: str) -> str:
    """Concrete-syntax source text of a bundled model."""
    try:
        return _SOURCES[name]
    except KeyError:
        raise KeyError(
            f"unknown bundled model {name!r}; available: {', '.join(MODEL_NAMES)}"
        ) from None


def get_model(name: str) -> Model:
    """Parse and return a bundled model."""
    return parse_model(get_source(name), source_name=name)
