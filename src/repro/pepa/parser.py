"""Recursive-descent parser for PEPA concrete syntax.

Grammar (EBNF, precedence encoded in the rule nesting)::

    model      ::= { definition } system [';'] EOF
    definition ::= LNAME '=' rate_expr ';'            (* rate definition *)
                 | UNAME '=' coop ';'                 (* process definition *)
    system     ::= coop
    coop       ::= choice { coop_op choice }          (* left-associative *)
    coop_op    ::= '<' [ LNAME { ',' LNAME } ] '>' | '<>' | '||'
    choice     ::= unary { '+' unary }
    unary      ::= atom { '/' '{' actions '}'
                        | '[' NUMBER [ ',' '{' actions '}' ] ']' }
    atom       ::= prefix | UNAME | '(' coop ')'
    prefix     ::= '(' LNAME ',' rate_expr ')' '.' atom
    rate_expr  ::= rate_term { ('+'|'-') rate_term }
    rate_term  ::= rate_atom { ('*'|'/') rate_atom }
    rate_atom  ::= NUMBER | LNAME | INFTY | '(' rate_expr ')'

Conventions enforced: rate names are lower-case (``LNAME``), process
constants upper-case (``UNAME``), ``infty``/``T`` is the passive rate.
"""

from __future__ import annotations

from repro.errors import PepaSyntaxError
from repro.pepa.lexer import Token, tokenize
from repro.pepa.syntax import (
    Aggregation,
    Choice,
    Constant,
    Cooperation,
    Hiding,
    Model,
    PassiveLiteral,
    Prefix,
    ProcessDef,
    ProcessTerm,
    RateBinOp,
    RateDef,
    RateExpr,
    RateLiteral,
    RateName,
)

__all__ = ["parse_model", "parse_process", "parse_rate_expr"]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        j = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[j]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect(self, kind: str, what: str | None = None) -> Token:
        tok = self.cur
        if tok.kind != kind:
            want = what or kind
            raise PepaSyntaxError(
                f"expected {want}, found {tok.text!r}", tok.line, tok.column
            )
        return self.advance()

    def error(self, message: str) -> PepaSyntaxError:
        tok = self.cur
        return PepaSyntaxError(message, tok.line, tok.column)

    # -- rate expressions ---------------------------------------------------

    def rate_expr(self) -> RateExpr:
        left = self.rate_term()
        while self.cur.kind in ("+", "-"):
            op = self.advance().text
            right = self.rate_term()
            left = RateBinOp(op, left, right)
        return left

    def rate_term(self) -> RateExpr:
        left = self.rate_atom()
        while self.cur.kind in ("*", "/"):
            op = self.advance().text
            right = self.rate_atom()
            left = RateBinOp(op, left, right)
        return left

    def rate_atom(self) -> RateExpr:
        tok = self.cur
        if tok.kind == "NUMBER":
            self.advance()
            return RateLiteral(float(tok.text))
        if tok.kind == "LNAME":
            self.advance()
            return RateName(tok.text)
        if tok.kind == "INFTY":
            self.advance()
            return PassiveLiteral()
        if tok.kind == "(":
            self.advance()
            inner = self.rate_expr()
            self.expect(")")
            return inner
        raise self.error(f"expected a rate expression, found {tok.text!r}")

    # -- process terms ------------------------------------------------------

    def coop(self) -> ProcessTerm:
        left = self.choice()
        while True:
            actions = self._try_coop_op()
            if actions is None:
                return left
            right = self.choice()
            left = Cooperation(left, right, tuple(actions))

    def _try_coop_op(self) -> list[str] | None:
        tok = self.cur
        if tok.kind in ("||", "<>"):
            self.advance()
            return []
        if tok.kind == "<":
            self.advance()
            actions = []
            if self.cur.kind != ">":
                actions.append(self.expect("LNAME", "an action name").text)
                while self.cur.kind == ",":
                    self.advance()
                    actions.append(self.expect("LNAME", "an action name").text)
            self.expect(">")
            return actions
        return None

    def choice(self) -> ProcessTerm:
        left = self.unary()
        while self.cur.kind == "+":
            self.advance()
            right = self.unary()
            left = Choice(left, right)
        return left

    def unary(self) -> ProcessTerm:
        term = self.atom()
        while True:
            if self.cur.kind == "/":
                self.advance()
                actions = self._action_set()
                term = Hiding(term, tuple(actions))
            elif self.cur.kind == "[":
                self.advance()
                num = self.expect("NUMBER", "a copy count")
                copies = float(num.text)
                if not copies.is_integer() or copies < 1:
                    raise PepaSyntaxError(
                        f"aggregation count must be a positive integer, got {num.text}",
                        num.line,
                        num.column,
                    )
                actions: list[str] = []
                if self.cur.kind == ",":
                    self.advance()
                    actions = self._action_set()
                self.expect("]")
                term = Aggregation(term, int(copies), tuple(actions))
            else:
                return term

    def _action_set(self) -> list[str]:
        self.expect("{")
        actions = []
        if self.cur.kind != "}":
            actions.append(self.expect("LNAME", "an action name").text)
            while self.cur.kind == ",":
                self.advance()
                actions.append(self.expect("LNAME", "an action name").text)
        self.expect("}")
        return actions

    def atom(self) -> ProcessTerm:
        tok = self.cur
        if tok.kind == "UNAME":
            self.advance()
            return Constant(tok.text)
        if tok.kind == "(":
            # Disambiguate prefix '(a, r)...' from parenthesized term: a
            # prefix starts with a lower-case action name followed by ','.
            if self.peek().kind == "LNAME" and self.peek(2).kind == ",":
                return self._prefix()
            self.advance()
            inner = self.coop()
            self.expect(")")
            return inner
        raise self.error(f"expected a process term, found {tok.text!r}")

    def _prefix(self) -> ProcessTerm:
        self.expect("(")
        action = self.expect("LNAME", "an action name").text
        self.expect(",")
        rate = self.rate_expr()
        self.expect(")")
        self.expect(".", "'.' after activity")
        continuation = self.atom()
        return Prefix(action, rate, continuation)

    # -- top level ------------------------------------------------------------

    def model(self, source_name: str) -> Model:
        rate_defs: list[RateDef] = []
        proc_defs: list[ProcessDef] = []
        seen: set[str] = set()
        while (
            self.cur.kind in ("LNAME", "UNAME")
            and self.peek().kind == "="
        ):
            name_tok = self.advance()
            self.advance()  # '='
            if name_tok.kind == "LNAME":
                expr = self.rate_expr()
                defn: RateDef | ProcessDef = RateDef(name_tok.text, expr)
            else:
                body = self.coop()
                defn = ProcessDef(name_tok.text, body)
            if name_tok.text in seen:
                raise PepaSyntaxError(
                    f"duplicate definition of {name_tok.text!r}",
                    name_tok.line,
                    name_tok.column,
                )
            seen.add(name_tok.text)
            self.expect(";", "';' after definition")
            if isinstance(defn, RateDef):
                rate_defs.append(defn)
            else:
                proc_defs.append(defn)
        if self.cur.kind == "EOF":
            raise self.error("model has no system equation")
        system = self.coop()
        if self.cur.kind == ";":
            self.advance()
        self.expect("EOF", "end of model")
        return Model(tuple(rate_defs), tuple(proc_defs), system, source_name)


def parse_model(source: str, source_name: str = "<model>") -> Model:
    """Parse complete PEPA source text into a :class:`Model`.

    Raises
    ------
    PepaSyntaxError
        With line/column information on any lexical or grammatical error.
    """
    return _Parser(tokenize(source)).model(source_name)


def parse_process(source: str) -> ProcessTerm:
    """Parse a single process term (used by tests and the REPL-ish CLI)."""
    parser = _Parser(tokenize(source))
    term = parser.coop()
    parser.expect("EOF", "end of process term")
    return term


def parse_rate_expr(source: str) -> RateExpr:
    """Parse a single rate expression."""
    parser = _Parser(tokenize(source))
    expr = parser.rate_expr()
    parser.expect("EOF", "end of rate expression")
    return expr
