"""PEPA — Performance Evaluation Process Algebra.

A from-scratch implementation of Hillston's PEPA formalism: parser,
structured operational semantics (with apparent rates and passive
cooperation), explicit state-space derivation, CTMC construction,
steady-state and transient analysis, passage-time CDFs, reward
structures, derivation-graph export and parameter experimentation.

Typical use::

    from repro.pepa import parse_model, derive, ctmc_of

    model = parse_model('''
        r = 2.0;
        mu = 3.0;
        Client = (request, r).(recover, r).Client;
        Server = (request, infty).(serve, mu).Server;
        Client <request> Server
    ''')
    space = derive(model)
    chain = ctmc_of(space)
    pi = chain.steady_state().pi
"""

from repro.pepa.syntax import (
    Model,
    ProcessDef,
    RateDef,
    Prefix,
    Choice,
    Constant,
    Cooperation,
    Hiding,
    Aggregation,
    unparse,
    unparse_model,
)
from repro.pepa.lexer import tokenize
from repro.pepa.parser import parse_model, parse_process
from repro.pepa.semantics import Rate, ActiveRate, PassiveRate, TAU
from repro.pepa.statespace import derive, derive_reference, StateSpace, Transition
from repro.pepa.ctmc import ctmc_of, CTMC
from repro.pepa.passage import passage_time_cdf, passage_time_mean, PassageTimeResult
from repro.pepa.rewards import throughput, utilization, population_average
from repro.pepa.graph import derivation_graph, to_dot, activity_graph
from repro.pepa.experiments import sweep, SweepResult
from repro.pepa.wellformed import check_model
from repro.pepa.lumping import (
    lump,
    LumpedCTMC,
    symmetry_labels,
    verify_population_agreement,
)
from repro.pepa.population import (
    canonical_partition,
    derive_population,
    has_replicated_symmetry,
    population_markov_ir,
    replicated_cluster_count,
)
from repro.pepa.simulation import (
    simulate,
    simulate_ensemble,
    empirical_throughput,
    SimulatedPath,
)
from repro.pepa.probes import attach_probe, probe_passage_time
from repro.pepa.kronecker import (
    kronecker_generator,
    kronecker_markov_ir,
    kronecker_states,
)
from repro.pepa import derivation  # registers the 'derive' IR backends
from repro.pepa import csl
from repro.pepa.export import (
    to_prism_tra,
    to_prism_sta,
    to_prism_lab,
    export_prism,
    import_tra,
)

__all__ = [
    "Model",
    "ProcessDef",
    "RateDef",
    "Prefix",
    "Choice",
    "Constant",
    "Cooperation",
    "Hiding",
    "Aggregation",
    "unparse",
    "unparse_model",
    "tokenize",
    "parse_model",
    "parse_process",
    "Rate",
    "ActiveRate",
    "PassiveRate",
    "TAU",
    "derive",
    "derive_reference",
    "derivation",
    "StateSpace",
    "Transition",
    "ctmc_of",
    "CTMC",
    "passage_time_cdf",
    "passage_time_mean",
    "PassageTimeResult",
    "throughput",
    "utilization",
    "population_average",
    "derivation_graph",
    "activity_graph",
    "to_dot",
    "sweep",
    "SweepResult",
    "check_model",
    "lump",
    "LumpedCTMC",
    "symmetry_labels",
    "verify_population_agreement",
    "canonical_partition",
    "derive_population",
    "has_replicated_symmetry",
    "population_markov_ir",
    "replicated_cluster_count",
    "simulate",
    "simulate_ensemble",
    "empirical_throughput",
    "SimulatedPath",
    "attach_probe",
    "probe_passage_time",
    "kronecker_generator",
    "kronecker_markov_ir",
    "kronecker_states",
    "csl",
    "to_prism_tra",
    "to_prism_sta",
    "to_prism_lab",
    "export_prism",
    "import_tra",
]
