"""Stochastic probes: passage times between observed actions.

PEPA's passage-time tooling (ipc/Hydra; the stochastic-probe line of
work the paper cites via Clark & Gilmore) measures the time between two
activities of a running system by attaching an *observer* component
that cooperates passively on the actions of interest:

    ProbeStopped = (start, infty).ProbeRunning + (stop, infty).ProbeStopped;
    ProbeRunning = (stop, infty).ProbeStopped + (start, infty).ProbeRunning;

Because every observed action is always enabled passively by the probe,
attaching it does not perturb the system's behaviour (the cooperation
rate stays the system's own rate — property-tested).  The steady-state
passage time from a ``start`` completion to the next ``stop`` completion
is then a first-passage question on the probed chain:

* source distribution — where the system lands at a ``start`` instant,
  weighted by the steady-state probability flux of ``start``;
* target set — every state in which the probe has returned to
  ``Stopped`` (only a ``stop`` completion can take it there).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import IllFormedModelError, PepaError
from repro.pepa.ctmc import CTMC, ctmc_of
from repro.pepa.passage import PassageTimeResult
from repro.pepa.statespace import derive
from repro.pepa.syntax import (
    Choice,
    Constant,
    Cooperation,
    Model,
    PassiveLiteral,
    Prefix,
    ProcessDef,
)
from repro.pepa.wellformed import alphabet

__all__ = ["attach_probe", "probe_passage_time", "PROBE_STOPPED", "PROBE_RUNNING"]

PROBE_STOPPED = "ProbeStopped"
PROBE_RUNNING = "ProbeRunning"


def attach_probe(model: Model, start_action: str, stop_action: str) -> Model:
    """Return a copy of ``model`` with a two-state observer attached.

    The probe cooperates on ``{start_action, stop_action}`` with the
    whole system equation and is always passively willing to observe
    either action, so the probed model is stochastically identical to
    the original (same rates, doubled state labels at most).

    Raises
    ------
    IllFormedModelError
        If either action is not in the system's alphabet (the probe
        would never fire), the two actions coincide, or the model
        already defines a component with the probe's reserved names.
    """
    if start_action == stop_action:
        raise IllFormedModelError("probe start and stop actions must differ")
    system_alphabet = alphabet(model, model.system)
    for action in (start_action, stop_action):
        if action not in system_alphabet:
            raise IllFormedModelError(
                f"probed action {action!r} is not in the system alphabet "
                f"{sorted(system_alphabet)}"
            )
    for reserved in (PROBE_STOPPED, PROBE_RUNNING):
        if model.process_body(reserved) is not None:
            raise IllFormedModelError(
                f"model already defines {reserved!r}; rename that component"
            )
    passive = PassiveLiteral()
    stopped = Choice(
        Prefix(start_action, passive, Constant(PROBE_RUNNING)),
        Prefix(stop_action, passive, Constant(PROBE_STOPPED)),
    )
    running = Choice(
        Prefix(stop_action, passive, Constant(PROBE_STOPPED)),
        Prefix(start_action, passive, Constant(PROBE_RUNNING)),
    )
    probe_defs = (
        ProcessDef(PROBE_STOPPED, stopped),
        ProcessDef(PROBE_RUNNING, running),
    )
    system = Cooperation(
        model.system, Constant(PROBE_STOPPED), (start_action, stop_action)
    )
    return Model(
        rate_defs=model.rate_defs,
        process_defs=model.process_defs + probe_defs,
        system=system,
        source_name=f"{model.source_name}+probe({start_action}->{stop_action})",
    )


def probe_passage_time(
    model: Model,
    start_action: str,
    stop_action: str,
    times: Sequence[float],
    max_states: int = 1_000_000,
) -> PassageTimeResult:
    """Steady-state passage time from a ``start_action`` completion to
    the next ``stop_action`` completion.

    The source distribution weights each post-``start`` state by the
    equilibrium probability flux of ``start_action`` into it; the CDF
    is the first passage into any probe-Stopped state.

    Raises
    ------
    PepaError
        If the probed chain has no ``start_action`` flux at equilibrium
        (the passage is never initiated).
    """
    probed = attach_probe(model, start_action, stop_action)
    space = derive(probed, max_states=max_states)
    if start_action not in space.actions:
        # Diagnose before solving: with zero start-labelled transitions
        # there is no flux at any distribution, and the probed chain may
        # not even admit a steady state (e.g. it deadlocks instantly).
        raise PepaError(
            f"no equilibrium flux of {start_action!r}: the passage never starts"
        )
    chain = ctmc_of(space)
    pi = chain.steady_state().pi
    probe_leaf = space.leaf_index(PROBE_STOPPED)
    running_locals = {
        j
        for j in range(len(space.local_terms[probe_leaf]))
        if space.local_label(probe_leaf, j) == PROBE_RUNNING
    }

    # Flux-weighted entry distribution: every start-labelled transition
    # that switches the probe from Stopped to Running.
    weights = np.zeros(chain.n_states)
    for tr in space.transitions:
        if tr.action != start_action:
            continue
        src_local = space.states[tr.source][probe_leaf]
        dst_local = space.states[tr.target][probe_leaf]
        if src_local not in running_locals and dst_local in running_locals:
            weights[tr.target] += pi[tr.source] * tr.rate
    total = weights.sum()
    if total <= 0:
        raise PepaError(
            f"no equilibrium flux of {start_action!r}: the passage never starts"
        )
    weights /= total

    targets = [
        i
        for i in range(chain.n_states)
        if space.states[i][probe_leaf] not in running_locals
    ]
    return _flux_weighted_passage(chain, weights, targets, times)


def _flux_weighted_passage(
    chain: CTMC,
    source_distribution: np.ndarray,
    targets: list[int],
    times: Sequence[float],
) -> PassageTimeResult:
    """Passage-time CDF from an arbitrary source *distribution* (the
    public engine takes uniform source sets; probes need flux weights)."""
    from repro.numerics.transient import absorption_cdf, expected_hitting_time

    times_arr = np.asarray(times, dtype=np.float64)
    cdf = absorption_cdf(chain.generator, source_distribution, targets, times_arr)
    cdf = np.maximum.accumulate(np.clip(cdf, 0.0, 1.0))
    mean = expected_hitting_time(chain.generator, source_distribution, targets)
    return PassageTimeResult(times=times_arr, cdf=cdf, mean=mean)
