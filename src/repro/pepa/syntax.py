"""Abstract syntax of PEPA models.

The grammar follows the conventions of the PEPA Eclipse plug-in:

* rate names are lower-case identifiers, process constants upper-case;
* ``infty`` (or ``T``) denotes the passive rate, optionally weighted
  (``2 * infty``);
* cooperation is written ``P <a, b> Q`` (``P || Q`` for the empty set);
* hiding is written ``P / {a, b}``;
* ``P[n]`` abbreviates ``n`` independent parallel copies of ``P`` and
  ``P[n, {a}]`` ``n`` copies cooperating pairwise on ``{a}``.

All AST nodes are immutable and hashable; structural equality is used to
canonicalize local derivative states during state-space derivation, so
``__eq__``/``__hash__`` correctness here is load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RateExpr",
    "RateLiteral",
    "RateName",
    "RateBinOp",
    "PassiveLiteral",
    "ProcessTerm",
    "Prefix",
    "Choice",
    "Constant",
    "Cooperation",
    "Hiding",
    "Aggregation",
    "RateDef",
    "ProcessDef",
    "Model",
    "unparse",
    "unparse_rate",
    "unparse_model",
]


# ---------------------------------------------------------------------------
# Rate expressions
# ---------------------------------------------------------------------------


class RateExpr:
    """Base class for rate expressions appearing in activity prefixes and
    rate definitions."""

    __slots__ = ()


@dataclass(frozen=True)
class RateLiteral(RateExpr):
    """A numeric rate literal, e.g. ``2.5``."""

    value: float

    def __post_init__(self):
        if self.value < 0:
            raise ValueError(f"rate literal must be non-negative, got {self.value}")


@dataclass(frozen=True)
class RateName(RateExpr):
    """A reference to a named rate, e.g. ``mu``."""

    name: str


@dataclass(frozen=True)
class PassiveLiteral(RateExpr):
    """The passive rate ``infty``, with an optional multiplicity weight
    (``w * infty`` is represented as ``PassiveLiteral(weight=w)``)."""

    weight: float = 1.0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"passive weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class RateBinOp(RateExpr):
    """Arithmetic over rates: ``+ - * /``."""

    op: str
    left: RateExpr
    right: RateExpr

    def __post_init__(self):
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unsupported rate operator {self.op!r}")


# ---------------------------------------------------------------------------
# Process terms
# ---------------------------------------------------------------------------


class ProcessTerm:
    """Base class for PEPA process terms."""

    __slots__ = ()


@dataclass(frozen=True)
class Prefix(ProcessTerm):
    """Activity prefix ``(action, rate).continuation``."""

    action: str
    rate: RateExpr
    continuation: ProcessTerm


@dataclass(frozen=True)
class Choice(ProcessTerm):
    """Competitive choice ``left + right``."""

    left: ProcessTerm
    right: ProcessTerm


@dataclass(frozen=True)
class Constant(ProcessTerm):
    """A named process constant, e.g. ``Server``."""

    name: str


@dataclass(frozen=True)
class Cooperation(ProcessTerm):
    """Cooperation ``left <actions> right`` (synchronize on ``actions``).

    ``actions`` is stored as a sorted tuple so the node remains hashable
    and prints deterministically.
    """

    left: ProcessTerm
    right: ProcessTerm
    actions: tuple[str, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "actions", tuple(sorted(set(self.actions))))

    @property
    def action_set(self) -> frozenset[str]:
        return frozenset(self.actions)


@dataclass(frozen=True)
class Hiding(ProcessTerm):
    """Hiding ``process / {actions}`` — actions become the silent ``tau``."""

    process: ProcessTerm
    actions: tuple[str, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "actions", tuple(sorted(set(self.actions))))

    @property
    def action_set(self) -> frozenset[str]:
        return frozenset(self.actions)


@dataclass(frozen=True)
class Aggregation(ProcessTerm):
    """Array shorthand ``P[n]`` / ``P[n, {a}]``.

    Purely syntactic: :func:`expand_aggregations` rewrites it into a
    balanced cooperation tree before derivation.
    """

    process: ProcessTerm
    copies: int
    actions: tuple[str, ...] = ()

    def __post_init__(self):
        if self.copies < 1:
            raise ValueError(f"aggregation needs at least one copy, got {self.copies}")
        object.__setattr__(self, "actions", tuple(sorted(set(self.actions))))


# ---------------------------------------------------------------------------
# Definitions and models
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RateDef:
    """``name = rate_expression ;``"""

    name: str
    expr: RateExpr


@dataclass(frozen=True)
class ProcessDef:
    """``Name = process_term ;``"""

    name: str
    body: ProcessTerm


@dataclass(frozen=True)
class Model:
    """A complete PEPA model: rate definitions, process definitions and
    the system equation."""

    rate_defs: tuple[RateDef, ...]
    process_defs: tuple[ProcessDef, ...]
    system: ProcessTerm
    source_name: str = "<model>"

    _rates: dict = field(default_factory=dict, compare=False, repr=False)
    _procs: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(self, "_rates", {d.name: d.expr for d in self.rate_defs})
        object.__setattr__(self, "_procs", {d.name: d.body for d in self.process_defs})

    @property
    def rates(self) -> dict[str, RateExpr]:
        """Rate definitions as a name → expression mapping."""
        return dict(self._rates)

    @property
    def processes(self) -> dict[str, ProcessTerm]:
        """Process definitions as a name → body mapping."""
        return dict(self._procs)

    def rate_expr(self, name: str) -> RateExpr | None:
        return self._rates.get(name)

    def process_body(self, name: str) -> ProcessTerm | None:
        return self._procs.get(name)

    def with_rate(self, name: str, value: float) -> "Model":
        """Return a copy of the model with rate ``name`` overridden.

        Used by the experimentation engine for parameter sweeps.
        """
        if name not in self._rates:
            from repro.errors import UnboundRateError

            raise UnboundRateError(f"cannot override undefined rate {name!r}")
        new_defs = tuple(
            RateDef(d.name, RateLiteral(value)) if d.name == name else d
            for d in self.rate_defs
        )
        return Model(new_defs, self.process_defs, self.system, self.source_name)


# ---------------------------------------------------------------------------
# Pretty printer (unparser)
# ---------------------------------------------------------------------------


def unparse_rate(expr: RateExpr) -> str:
    """Render a rate expression back to concrete syntax."""
    if isinstance(expr, RateLiteral):
        v = expr.value
        return repr(int(v)) if float(v).is_integer() and abs(v) < 1e15 else repr(v)
    if isinstance(expr, RateName):
        return expr.name
    if isinstance(expr, PassiveLiteral):
        if expr.weight == 1.0:
            return "infty"
        return f"{unparse_rate(RateLiteral(expr.weight))} * infty"
    if isinstance(expr, RateBinOp):
        return f"({unparse_rate(expr.left)} {expr.op} {unparse_rate(expr.right)})"
    raise TypeError(f"not a rate expression: {expr!r}")


def _coop_label(actions: tuple[str, ...]) -> str:
    return "||" if not actions else "<" + ", ".join(actions) + ">"


def unparse(term: ProcessTerm) -> str:
    """Render a process term back to concrete syntax.

    The output is fully parenthesized where precedence could be
    ambiguous, and re-parses to a structurally equal term (property
    tested in ``tests/pepa/test_roundtrip.py``).
    """
    if isinstance(term, Constant):
        return term.name
    if isinstance(term, Prefix):
        cont = term.continuation
        cont_s = unparse(cont)
        # The grammar's prefix continuation is an atom: anything with an
        # operator or postfix needs explicit parentheses to round-trip.
        if isinstance(cont, (Choice, Cooperation, Hiding, Aggregation)):
            cont_s = f"({cont_s})"
        return f"({term.action}, {unparse_rate(term.rate)}).{cont_s}"
    if isinstance(term, Choice):
        left_s = unparse(term.left)
        if isinstance(term.left, (Cooperation, Hiding)):
            left_s = f"({left_s})"
        right_s = unparse(term.right)
        # '+' is parsed left-associative: a right-nested Choice must keep
        # its parentheses to preserve the tree shape.
        if isinstance(term.right, (Cooperation, Hiding, Choice)):
            right_s = f"({right_s})"
        return f"{left_s} + {right_s}"
    if isinstance(term, Cooperation):
        left = unparse(term.left)
        if isinstance(term.left, (Cooperation, Choice)):
            left = f"({left})"
        right = unparse(term.right)
        if isinstance(term.right, (Cooperation, Choice)):
            right = f"({right})"
        return f"{left} {_coop_label(term.actions)} {right}"
    if isinstance(term, Hiding):
        inner = unparse(term.process)
        if isinstance(term.process, (Cooperation, Choice, Prefix)):
            inner = f"({inner})"
        return f"{inner} / {{{', '.join(term.actions)}}}"
    if isinstance(term, Aggregation):
        inner = unparse(term.process)
        if not isinstance(term.process, Constant):
            inner = f"({inner})"
        if term.actions:
            return f"{inner}[{term.copies}, {{{', '.join(term.actions)}}}]"
        return f"{inner}[{term.copies}]"
    raise TypeError(f"not a process term: {term!r}")


def unparse_model(model: Model) -> str:
    """Render a whole model back to concrete syntax."""
    lines = [f"{d.name} = {unparse_rate(d.expr)};" for d in model.rate_defs]
    lines += [f"{d.name} = {unparse(d.body)};" for d in model.process_defs]
    lines.append(unparse(model.system))
    return "\n".join(lines) + "\n"


def expand_aggregations(term: ProcessTerm) -> ProcessTerm:
    """Rewrite every :class:`Aggregation` node into an explicit balanced
    cooperation tree (``P[4]`` → ``(P || P) || (P || P)``)."""
    if isinstance(term, Aggregation):
        base = expand_aggregations(term.process)
        nodes = [base] * term.copies
        while len(nodes) > 1:
            nxt = []
            for i in range(0, len(nodes) - 1, 2):
                nxt.append(Cooperation(nodes[i], nodes[i + 1], term.actions))
            if len(nodes) % 2:
                nxt.append(nodes[-1])
            nodes = nxt
        return nodes[0]
    if isinstance(term, Prefix):
        return Prefix(term.action, term.rate, expand_aggregations(term.continuation))
    if isinstance(term, Choice):
        return Choice(expand_aggregations(term.left), expand_aggregations(term.right))
    if isinstance(term, Cooperation):
        return Cooperation(
            expand_aggregations(term.left), expand_aggregations(term.right), term.actions
        )
    if isinstance(term, Hiding):
        return Hiding(expand_aggregations(term.process), term.actions)
    return term
