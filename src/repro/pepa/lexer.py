"""Tokenizer for the PEPA concrete syntax.

Produces a flat list of :class:`Token` with 1-based line/column
positions so the parser can report precise error locations.  Supports
``//`` line comments and ``/* ... */`` block comments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PepaSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: Reserved words: the passive rate spellings.
KEYWORDS = frozenset({"infty", "T"})

_PUNCT2 = ("||", "<>")
_PUNCT1 = "=(),.+/{}<>[];*-%"


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``NUMBER``, ``LNAME`` (lower-case identifier),
    ``UNAME`` (upper-case identifier), ``INFTY``, a punctuation string,
    or ``EOF``.
    """

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # compact for parser error messages
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Tokenize PEPA source text.

    Raises
    ------
    PepaSyntaxError
        On an unexpected character or an unterminated block comment.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise PepaSyntaxError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isdigit() or source[i] == "."):
                advance(1)
            # scientific notation: 1e-3, 2.5E+4
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    while i < j:
                        advance(1)
                    while i < n and source[i].isdigit():
                        advance(1)
            text = source[start:i]
            try:
                float(text)
            except ValueError:
                raise PepaSyntaxError(f"malformed number {text!r}", start_line, start_col)
            tokens.append(Token("NUMBER", text, start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] in "_'"):
                advance(1)
            text = source[start:i]
            if text in KEYWORDS:
                tokens.append(Token("INFTY", text, start_line, start_col))
            elif text[0].isupper():
                tokens.append(Token("UNAME", text, start_line, start_col))
            else:
                tokens.append(Token("LNAME", text, start_line, start_col))
            continue
        two = source[i : i + 2]
        if two in _PUNCT2:
            tokens.append(Token(two, two, line, col))
            advance(2)
            continue
        if ch in _PUNCT1:
            tokens.append(Token(ch, ch, line, col))
            advance(1)
            continue
        raise PepaSyntaxError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("EOF", "", line, col))
    return tokens
