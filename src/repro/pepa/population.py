"""Population-form (lumped) state-space derivation for PEPA models.

Models that replicate identical components — ``PC[50]`` aggregations,
or hand-written cooperations of structurally identical siblings —
explode the explicit state space even though the underlying CTMC is
ordinarily lumpable: permuting the replicas is an automorphism, so only
the *multiset* of their local states matters.  This module derives the
quotient chain directly, following Ding & Hillston's numerical
vector/population-form representation: during the BFS sweep every
discovered state is canonicalized to its orbit representative, so the
frontier never holds more than one state per symmetry orbit and PC-LAN
with N clients derives in O(poly(N)) states instead of O(2^N).

Canonicalization works on the static structure tree:

1. Maximal chains of cooperation nodes sharing one action set are
   flattened into a single member list (sound because PEPA cooperation
   over a fixed action set is associative and commutative up to strong
   equivalence).
2. Members with identical *shape* — the same subtree of action sets and
   leaf initial derivatives — form a replica cluster whose sub-states
   are interchangeable.
3. A state's representative sorts each cluster's member sub-state
   tuples, innermost clusters first, so nested replication (replicated
   segments of replicated clients) canonicalizes bottom-up.

Sorting member sub-tuples compares interned local-derivative indices
across leaves, so the deriver eagerly pre-interns each leaf's full
local derivative set in deterministic local-BFS order: shape-identical
leaves then carry identical interning tables and index comparison
coincides with term comparison.  (The explicit deriver interns lazily
in global discovery order; its bit-exact state numbering is untouched.)

Transition rates need no correction factors: the representative's
outgoing transitions into a target orbit are exactly the lumped
generator row once the CTMC layer sums parallel edges — ordinary
lumpability of the orbit partition guarantees every member row
aggregates identically.

The derived :class:`~repro.pepa.statespace.StateSpace` carries two
extra attributes: ``orbit_info`` (an :class:`repro.ir.markov.OrbitInfo`
with orbit sizes, the exact full-space state count and the population
count vectors) and ``population_labels`` (count-form state labels like
``((3*PC, PC1), Medium)``).
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.ir.markov import MarkovIR, OrbitInfo
from repro.pepa.statespace import (
    Leaf,
    StateSpace,
    _CoopNode,
    _Deriver,
    _HideNode,
    _build_structure,
    derive,
)
from repro.pepa.syntax import Constant, Model, expand_aggregations, unparse

__all__ = [
    "derive_population",
    "population_markov_ir",
    "canonical_partition",
    "has_replicated_symmetry",
    "replicated_cluster_count",
]


# ---------------------------------------------------------------------------
# Structural symmetry detection (cheap, no derivation)
# ---------------------------------------------------------------------------


def _tree_shape(node) -> tuple:
    """Recursive structural signature of a raw structure-tree node.

    Two subtrees with equal shapes start in the same configuration and
    stay behaviorally interchangeable, leaf for leaf, so their
    sub-states can be transplanted by index permutation.
    """
    if isinstance(node, Leaf):
        return ("leaf", node.initial)
    if isinstance(node, _HideNode):
        return ("hide", node.actions, _tree_shape(node.child))
    return ("coop", node.actions, _tree_shape(node.left), _tree_shape(node.right))


def _tree_flatten(node, actions: frozenset, members: list) -> None:
    """Flatten a maximal same-action-set cooperation chain."""
    if isinstance(node, _CoopNode) and node.actions == actions:
        _tree_flatten(node.left, actions, members)
        _tree_flatten(node.right, actions, members)
    else:
        members.append(node)


def replicated_cluster_count(model: Model) -> int:
    """Number of replica clusters (>= 2 shape-identical cooperation
    siblings) in the model's expanded structure tree."""
    leaves: list[Leaf] = []
    root = _build_structure(expand_aggregations(model.system), leaves, {})
    count = 0

    def walk(node) -> None:
        nonlocal count
        if isinstance(node, Leaf):
            return
        if isinstance(node, _HideNode):
            walk(node.child)
            return
        members: list = []
        _tree_flatten(node, node.actions, members)
        shapes = Counter(_tree_shape(m) for m in members)
        count += sum(1 for c in shapes.values() if c >= 2)
        for m in members:
            walk(m)

    walk(root)
    return count


def has_replicated_symmetry(model: Model) -> bool:
    """True when population-form derivation can aggregate anything."""
    return replicated_cluster_count(model) > 0


# ---------------------------------------------------------------------------
# The population-form deriver
# ---------------------------------------------------------------------------


class _PopulationDeriver(_Deriver):
    """The memoized fast deriver with orbit canonicalization plugged in.

    Everything about transition computation (structure numbering, memo
    tables, float SOS mirrors) is inherited; this subclass only adds
    the symmetry analysis and sets ``_canonical`` so the BFS in
    :meth:`_Deriver.run` explores orbit representatives.
    """

    def __init__(self, model: Model, max_states: int):
        super().__init__(model, max_states)
        self._preintern_leaves()
        self._shape_memo: dict[int, tuple] = {}
        #: Per cluster (post-order, innermost first): the member
        #: leafsets, each a tuple of leaf indices in identical
        #: traversal order across the cluster.
        self._groups: list[list[tuple[int, ...]]] = []
        #: Parallel to ``_groups``: the member node ids (for labels).
        self._group_nodes: list[list[int]] = []
        self._collect_groups(self.root)
        if self._groups:
            self._canonical = self._canonicalize

    # -- symmetry analysis ---------------------------------------------------

    def _preintern_leaves(self) -> None:
        """Intern every leaf's full local derivative set, local-BFS order.

        Shape-identical leaves share the initial derivative and the
        sequential semantics, so this assigns them *identical*
        term -> index tables; comparing interned indices across such
        leaves is then the same as comparing terms, which is what makes
        sorting member sub-tuples meaningful.
        """
        for leaf in self.leaves:
            k = leaf.index
            j = 0
            terms = self.local_terms[k]
            while j < len(terms):
                self._local_transitions(k, j)  # interns targets in order
                j += 1

    def _shape(self, nid: int) -> tuple:
        shape = self._shape_memo.get(nid)
        if shape is None:
            node = self._nodes[nid]
            if isinstance(node, Leaf):
                shape = ("leaf", node.initial)
            elif isinstance(node, _HideNode):
                shape = ("hide", node.actions, self._shape(self._kids[nid][0]))
            else:
                shape = (
                    "coop",
                    node.actions,
                    self._shape(self._kids[nid][0]),
                    self._shape(self._kids[nid][1]),
                )
            self._shape_memo[nid] = shape
        return shape

    def _flatten(self, nid: int, actions: frozenset, members: list[int]) -> None:
        node = self._nodes[nid]
        if isinstance(node, _CoopNode) and node.actions == actions:
            self._flatten(self._kids[nid][0], actions, members)
            self._flatten(self._kids[nid][1], actions, members)
        else:
            members.append(nid)

    def _collect_groups(self, nid: int) -> None:
        node = self._nodes[nid]
        if isinstance(node, Leaf):
            return
        if isinstance(node, _HideNode):
            self._collect_groups(self._kids[nid][0])
            return
        members: list[int] = []
        self._flatten(nid, node.actions, members)
        # Recurse first: nested clusters canonicalize before the
        # enclosing one sorts its member sub-tuples.
        for m in members:
            self._collect_groups(m)
        by_shape: dict[tuple, list[int]] = {}
        for m in members:
            by_shape.setdefault(self._shape(m), []).append(m)
        for ms in by_shape.values():
            if len(ms) >= 2:
                self._group_nodes.append(ms)
                self._groups.append([self._leafsets[m] for m in ms])

    # -- canonicalization ----------------------------------------------------

    def _canonicalize(self, state: tuple[int, ...]) -> tuple[int, ...]:
        out = list(state)
        for leafsets in self._groups:
            subs = sorted(tuple(out[i] for i in ls) for ls in leafsets)
            for ls, sub in zip(leafsets, subs):
                for i, v in zip(ls, sub):
                    out[i] = v
        return tuple(out)

    # -- orbit accounting ----------------------------------------------------

    def orbit_size(self, state: tuple[int, ...]) -> int:
        """Exact number of explicit states in ``state``'s orbit.

        Product over clusters of the multinomial coefficient of the
        member sub-tuple multiset: arrangements at each cluster compose
        independently with the nested clusters' own arrangements (the
        symmetry group is the corresponding iterated wreath product).
        """
        total = 1
        for leafsets in self._groups:
            counts = Counter(tuple(state[i] for i in ls) for ls in leafsets)
            perm = math.factorial(len(leafsets))
            for c in counts.values():
                perm //= math.factorial(c)
            total *= perm
        return total

    # -- labels and population counts ----------------------------------------

    def _local_label(self, leaf: int, local_idx: int) -> str:
        term = self.local_terms[leaf][local_idx]
        return term.name if isinstance(term, Constant) else unparse(term)

    def _node_label(self, nid: int, state) -> str:
        node = self._nodes[nid]
        if isinstance(node, Leaf):
            return self._local_label(node.index, state[node.index])
        if isinstance(node, _HideNode):
            return self._node_label(self._kids[nid][0], state)
        members: list[int] = []
        self._flatten(nid, node.actions, members)
        counted: dict[str, int] = {}
        for m in members:
            label = self._node_label(m, state)
            counted[label] = counted.get(label, 0) + 1
        parts = [
            f"{c}*{label}" if c > 1 else label for label, c in counted.items()
        ]
        return "(" + ", ".join(parts) + ")"

    def population_label(self, state) -> str:
        """Count-form state label, e.g. ``((3*PC, PC1), Medium)``."""
        label = self._node_label(self.root, state)
        return label if label.startswith("(") else "(" + label + ")"

    def _member_config_label(self, group: int, sub: tuple[int, ...]) -> str:
        leafsets = self._groups[group]
        pseudo = [0] * len(self.leaves)
        for i, v in zip(leafsets[0], sub):
            pseudo[i] = v
        return self._node_label(self._group_nodes[group][0], pseudo)

    def orbit_info(self, states: list[tuple[int, ...]]) -> OrbitInfo:
        """Assemble the aggregation metadata for the derived states."""
        sizes = [self.orbit_size(s) for s in states]
        cfg_cols: list[dict[tuple[int, ...], int]] = [{} for _ in self._groups]
        col_labels: list[str] = []
        col_group: list[int] = []
        entries: dict[tuple[int, int], int] = {}
        for i, state in enumerate(states):
            for g, leafsets in enumerate(self._groups):
                for ls in leafsets:
                    sub = tuple(state[i2] for i2 in ls)
                    col = cfg_cols[g].get(sub)
                    if col is None:
                        col = cfg_cols[g][sub] = len(col_labels)
                        col_labels.append(self._member_config_label(g, sub))
                        col_group.append(g)
                    key = (i, col)
                    entries[key] = entries.get(key, 0) + 1
        counts = np.zeros((len(states), len(col_labels)), dtype=np.float64)
        for (i, col), c in entries.items():
            counts[i, col] = c
        return OrbitInfo(
            orbit_sizes=np.asarray(sizes, dtype=np.float64),
            full_states=int(sum(sizes)),
            counts=counts,
            column_labels=tuple(col_labels),
            column_group=np.asarray(col_group, dtype=np.intp),
            group_totals=np.asarray(
                [len(ls) for ls in self._groups], dtype=np.intp
            ),
        )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def derive_population(model: Model, max_states: int = 1_000_000) -> StateSpace:
    """Derive the population-form (orbit-quotient) state space.

    Exact aggregation, not an approximation: the returned chain is the
    ordinary lumping of the explicit chain by the replica-symmetry
    partition, so every projected (population-count) measure agrees
    with the explicit chain's.  ``max_states`` bounds the *aggregated*
    state count — models whose explicit space is astronomically large
    derive fine as long as the quotient fits.

    The result is served through the engine's content cache and carries
    ``orbit_info`` / ``population_labels`` attributes (see the module
    docstring).  Timed under ``derive.population``.
    """
    from repro.engine.cache import cached
    from repro.engine.metrics import get_registry

    registry = get_registry()
    with registry.timer("derive.population") as gauges:

        def compute() -> StateSpace:
            deriver = _PopulationDeriver(model, max_states)
            space = deriver.run()
            registry.increment("derive.memo_hit", deriver.memo_hits)
            registry.increment("derive.memo_miss", deriver.memo_misses)
            space.orbit_info = deriver.orbit_info(space.states)
            space.population_labels = tuple(
                deriver.population_label(s) for s in space.states
            )
            return space

        space, _status = cached("derive.population", (model, max_states), compute)
        gauges["n_states"] = space.size
        gauges["full_states"] = min(float(space.orbit_info.full_states), 1e300)
    return space


def population_markov_ir(model: Model, max_states: int = 1_000_000) -> MarkovIR:
    """Lower the population-form space to a labelled :class:`MarkovIR`.

    Labels are the population-count form; the ``orbits`` field carries
    the :class:`OrbitInfo` the trust layer's lumped-derive sentinel and
    the measure-projection helpers consume.
    """
    from repro.pepa.ctmc import ctmc_of

    space = derive_population(model, max_states=max_states)
    chain = ctmc_of(space)
    names = space.action_names
    return MarkovIR(
        generator=chain.generator,
        initial_index=space.initial_state,
        labels=space.population_labels,
        trans_source=space.trans_source,
        trans_target=space.trans_target,
        trans_rate=space.trans_rate,
        trans_action=tuple(names[c] for c in space.trans_action_code),
        orbits=space.orbit_info,
    )


def canonical_partition(
    model: Model,
    space: StateSpace | None = None,
    max_states: int = 1_000_000,
) -> list[tuple[int, ...]]:
    """Canonical orbit key of every state of the *explicit* space.

    The keys live in the population deriver's eagerly-interned index
    space, so they are directly comparable with
    ``derive_population(model).states``: two explicit states share a
    key iff they lie in the same symmetry orbit.  Use as the ``initial``
    partition of :func:`repro.pepa.lumping.lump` to lump exactly by
    orbits, or to project explicit measures onto population states.
    """
    if space is None:
        space = derive(model, max_states=max_states)
    analysis = _PopulationDeriver(model, max_states)
    remap = [
        [analysis.local_index[k][term] for term in space.local_terms[k]]
        for k in range(len(space.leaves))
    ]
    n_leaves = len(remap)
    canonical = analysis._canonicalize if analysis._groups else tuple
    return [
        canonical(tuple(remap[k][s[k]] for k in range(n_leaves)))
        for s in space.states
    ]
