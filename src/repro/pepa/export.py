"""Interchange with the PRISM probabilistic model checker.

The paper situates PEPA among quantitative-analysis tools alongside
PRISM (Hinton et al., TACAS 2006).  PRISM consumes CTMCs in its
*explicit* file format; exporting a derived PEPA chain lets users run
CSL model checking on models built here:

* ``.tra`` — transitions: header ``<n> <m>`` then ``src dst rate`` rows;
* ``.sta`` — states: header ``(v0,v1,...)`` naming one variable per
  sequential component, then ``index:(l0,l1,...)`` rows of local-state
  indices;
* ``.lab`` — labels: declares ``init`` (and ``deadlock`` when present)
  and tags the matching states.

All three renderings are deterministic; :func:`import_tra` reads the
transition format back (round-trip tested), so the chain can also be
post-processed by external tooling and re-imported.
"""

from __future__ import annotations

import re

import numpy as np
import scipy.sparse as sp

from repro.errors import PepaError
from repro.pepa.ctmc import CTMC

__all__ = ["to_prism_tra", "to_prism_sta", "to_prism_lab", "export_prism", "import_tra"]


def _rate_matrix(chain: CTMC) -> sp.coo_matrix:
    """Off-diagonal rate matrix of the chain (aggregated transitions)."""
    Q = chain.generator.tocoo()
    mask = Q.row != Q.col
    return sp.coo_matrix(
        (Q.data[mask], (Q.row[mask], Q.col[mask])), shape=Q.shape
    )


def to_prism_tra(chain: CTMC) -> str:
    """Render the chain's transition matrix in PRISM ``.tra`` format."""
    R = _rate_matrix(chain)
    order = np.lexsort((R.col, R.row))
    lines = [f"{chain.n_states} {R.nnz}"]
    for k in order:
        lines.append(f"{R.row[k]} {R.col[k]} {R.data[k]:.12g}")
    return "\n".join(lines) + "\n"


def to_prism_sta(chain: CTMC) -> str:
    """Render the state table in PRISM ``.sta`` format.

    One variable per sequential component, valued by the interned local
    derivative index (the ``.sta`` header names the variables after the
    component leaves).
    """
    space = chain.space
    names = ",".join(_sanitize(leaf.name) for leaf in space.leaves)
    lines = [f"({names})"]
    for i, state in enumerate(space.states):
        lines.append(f"{i}:(" + ",".join(str(v) for v in state) + ")")
    return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def to_prism_lab(chain: CTMC) -> str:
    """Render the label file: ``init`` plus ``deadlock`` when present."""
    space = chain.space
    deadlocks = space.deadlocked_states()
    decls = ['0="init"']
    if deadlocks:
        decls.append('1="deadlock"')
    lines = [" ".join(decls)]
    lines.append(f"{space.initial_state}: 0")
    for s in deadlocks:
        if s == space.initial_state:
            lines[-1] = f"{s}: 0 1"
        else:
            lines.append(f"{s}: 1")
    return "\n".join(lines) + "\n"


def export_prism(chain: CTMC, basename: str) -> dict[str, str]:
    """Write ``basename.tra/.sta/.lab`` to disk; returns path → content."""
    import pathlib

    out = {
        f"{basename}.tra": to_prism_tra(chain),
        f"{basename}.sta": to_prism_sta(chain),
        f"{basename}.lab": to_prism_lab(chain),
    }
    for path, content in out.items():
        pathlib.Path(path).write_text(content)
    return out


def import_tra(text: str) -> sp.csr_matrix:
    """Parse a PRISM ``.tra`` document back into a CTMC generator.

    Returns the full generator (diagonal restored from row sums).

    Raises
    ------
    PepaError
        On malformed headers or rows, out-of-range indices, or a row
        count that disagrees with the header.
    """
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines:
        raise PepaError("empty .tra document")
    header = lines[0].split()
    if len(header) != 2:
        raise PepaError(f"malformed .tra header {lines[0]!r} (expected '<n> <m>')")
    try:
        n, m = int(header[0]), int(header[1])
    except ValueError:
        raise PepaError(f"malformed .tra header {lines[0]!r}") from None
    if len(lines) - 1 != m:
        raise PepaError(f".tra declares {m} transitions but contains {len(lines) - 1}")
    rows = np.empty(m, dtype=np.intp)
    cols = np.empty(m, dtype=np.intp)
    vals = np.empty(m, dtype=np.float64)
    for k, line in enumerate(lines[1:]):
        parts = line.split()
        if len(parts) != 3:
            raise PepaError(f"malformed .tra row {line!r}")
        try:
            src, dst, rate = int(parts[0]), int(parts[1]), float(parts[2])
        except ValueError:
            raise PepaError(f"malformed .tra row {line!r}") from None
        if not (0 <= src < n and 0 <= dst < n):
            raise PepaError(f".tra row {line!r} references a state outside 0..{n - 1}")
        if rate <= 0:
            raise PepaError(f".tra row {line!r} has a non-positive rate")
        rows[k], cols[k], vals[k] = src, dst, rate
    R = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    exit_rates = np.asarray(R.sum(axis=1)).ravel()
    return (R - sp.diags(exit_rates, format="csr")).tocsr()
