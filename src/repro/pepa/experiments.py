"""Parameter experimentation over PEPA models.

Replicates the PEPA Eclipse plug-in's "experimentation" feature: vary
one or more named rates over ranges, re-derive/re-solve, and tabulate a
performance measure for each parameter combination.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.engine import run_manifest
from repro.engine.executor import run_tasks
from repro.engine.metrics import get_registry
from repro.pepa.ctmc import CTMC, ctmc_of
from repro.pepa.statespace import derive
from repro.pepa.syntax import Model

__all__ = ["sweep", "SweepResult"]

Measure = Callable[[CTMC], float]


@dataclass(frozen=True)
class SweepResult:
    """Tabulated results of a parameter sweep.

    Attributes
    ----------
    parameters:
        Parameter names, in the order used in ``grid`` columns.
    grid:
        Array of shape ``(n_runs, n_parameters)`` of parameter values.
    values:
        Measured quantity per run, aligned with ``grid`` rows.
    meta:
        Execution metadata (``manifest``); excluded from equality and
        content hashing.
    """

    parameters: tuple[str, ...]
    grid: np.ndarray
    values: np.ndarray
    meta: dict = field(default_factory=dict, compare=False)

    def column(self, parameter: str) -> np.ndarray:
        """Values of one swept parameter across all runs."""
        try:
            j = self.parameters.index(parameter)
        except ValueError:
            raise KeyError(
                f"{parameter!r} was not swept; parameters: {self.parameters}"
            ) from None
        return self.grid[:, j]

    def as_rows(self) -> list[dict[str, float]]:
        """Rows as dictionaries, convenient for printing tables."""
        rows = []
        for k in range(self.grid.shape[0]):
            row = {p: float(self.grid[k, j]) for j, p in enumerate(self.parameters)}
            row["value"] = float(self.values[k])
            rows.append(row)
        return rows


def sweep(
    model: Model,
    ranges: Mapping[str, Sequence[float]],
    measure: Measure,
    max_states: int = 1_000_000,
) -> SweepResult:
    """Run ``measure`` over the Cartesian product of rate assignments.

    Parameters
    ----------
    model:
        Base model; each run overrides the swept rates via
        :meth:`Model.with_rate` (definitions not swept are untouched).
    ranges:
        Mapping of rate name to the values it takes.
    measure:
        Callable receiving the solved-ready :class:`CTMC` of each
        variant; typically wraps :func:`repro.pepa.rewards.throughput`
        or a passage-time quantile.

    Notes
    -----
    Rate changes cannot alter reachability in PEPA (rates are strictly
    positive), but the sweep re-derives per run anyway — derivations
    repeat across sweeps only when the *same* rate assignment recurs, in
    which case the engine's content-addressed cache serves them.

    Each grid point is an independent work unit: under
    ``engine.parallel(workers=...)`` the points run on a process pool
    (values come back in grid order, so results are identical to the
    sequential path).  A ``measure`` that cannot be pickled — a lambda,
    say — silently degrades to sequential execution.
    """
    if not ranges:
        raise ValueError("sweep requires at least one parameter range")
    names = tuple(ranges.keys())
    value_lists = [list(ranges[name]) for name in names]
    for name, vals in zip(names, value_lists):
        if not vals:
            raise ValueError(f"parameter {name!r} has an empty range")
    combos = list(itertools.product(*value_lists))
    grid = np.array(combos, dtype=np.float64)
    with get_registry().timer("sweep") as gauges:
        tasks = [(model, names, combo, max_states, measure) for combo in combos]
        values = np.asarray(run_tasks(_sweep_point, tasks), dtype=np.float64)
        gauges["points"] = len(combos)
    result = SweepResult(parameters=names, grid=grid, values=values)
    # The measure callable has no stable serialization, so sweep
    # manifests document the run (ranges, chunking, environment, result
    # digest) without claiming to be re-executable from JSON alone.
    manifest = run_manifest.build_batch_manifest(
        "sweep",
        {
            "parameters": list(names),
            "ranges": {name: list(map(float, ranges[name])) for name in names},
            "max_states": max_states,
            "measure": getattr(measure, "__qualname__", repr(measure)),
        },
        result,
        model=run_manifest.current_model_context(),
        chunks={"count": len(combos)},
        replayable=False,
    )
    run_manifest.attach_manifest(result, manifest)
    return result


def _sweep_point(task) -> float:
    """Worker: solve one rate assignment and apply the measure."""
    model, names, combo, max_states, measure = task
    variant = model
    for name, value in zip(names, combo):
        variant = variant.with_rate(name, float(value))
    chain = ctmc_of(derive(variant, max_states=max_states))
    return float(measure(chain))
