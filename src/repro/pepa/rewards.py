"""Reward structures over PEPA steady-state solutions.

The classical PEPA performance measures:

* **throughput** of an action — expected completed activities of that
  type per time unit;
* **utilization** of a component's local state — long-run fraction of
  time a leaf spends in a given derivative;
* **population average** — expected number of leaves (of a family) in a
  given derivative, the measure used by client/server scalability
  studies.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.pepa.ctmc import CTMC

__all__ = ["throughput", "utilization", "population_average", "reward_vector", "expected_reward"]


def _pi(chain: CTMC, pi: np.ndarray | None) -> np.ndarray:
    if pi is None:
        pi = chain.steady_state().pi
    pi = np.asarray(pi, dtype=np.float64)
    if pi.shape != (chain.n_states,):
        raise ValueError(
            f"probability vector has shape {pi.shape}, expected ({chain.n_states},)"
        )
    return pi


def throughput(chain: CTMC, action: str, pi: np.ndarray | None = None) -> float:
    """Steady-state throughput of ``action``: ``sum_s pi(s) * r_a(s)``.

    ``pi`` may be supplied to reuse an existing solve.
    """
    pi = _pi(chain, pi)
    return float(pi @ chain.action_exit_rates(action))


def utilization(
    chain: CTMC,
    leaf: int | str,
    local_state: str,
    pi: np.ndarray | None = None,
) -> float:
    """Long-run probability that component ``leaf`` is in ``local_state``.

    ``local_state`` is the label of a local derivative — a constant name
    such as ``"Server_busy"`` or the unparsed form of an anonymous
    derivative.
    """
    pi = _pi(chain, pi)
    states = chain.space.states_with_local(leaf, local_state)
    return float(pi[states].sum())


def population_average(
    chain: CTMC,
    leaf_family: str,
    local_state: str,
    pi: np.ndarray | None = None,
) -> float:
    """Expected number of leaves named ``leaf_family`` (exactly, or with a
    ``#k`` copy suffix from aggregation expansion) that are in
    ``local_state`` at equilibrium."""
    pi = _pi(chain, pi)
    space = chain.space
    total = 0.0
    matched = False
    for leaf in space.leaves:
        base = leaf.name.split("#", 1)[0]
        if base != leaf_family:
            continue
        matched = True
        states = space.states_with_local(leaf.index, local_state)
        total += float(pi[states].sum())
    if not matched:
        raise KeyError(
            f"no component family named {leaf_family!r}; have "
            f"{sorted({l.name.split('#', 1)[0] for l in space.leaves})}"
        )
    return total


def reward_vector(
    chain: CTMC, reward: Callable[[object, int], float]
) -> np.ndarray:
    """Evaluate a per-state reward function ``reward(space, state_index)``
    into a dense vector."""
    space = chain.space
    return np.fromiter(
        (reward(space, i) for i in range(space.size)), dtype=np.float64, count=space.size
    )


def expected_reward(
    chain: CTMC,
    reward: Callable[[object, int], float] | Sequence[float],
    pi: np.ndarray | None = None,
) -> float:
    """Steady-state expectation of a per-state reward (callable or vector)."""
    pi = _pi(chain, pi)
    r = reward_vector(chain, reward) if callable(reward) else np.asarray(reward, float)
    if r.shape != pi.shape:
        raise ValueError(f"reward vector shape {r.shape} != pi shape {pi.shape}")
    return float(pi @ r)
