"""Explicit state-space derivation for PEPA models.

A PEPA model's cooperation/hiding structure is static: only the local
states of the sequential components at the leaves evolve.  Derivation
therefore proceeds in two phases:

1. The system equation is analyzed into a *structure tree* of
   cooperation and hiding nodes over sequential leaves.
2. A breadth-first reachability sweep enumerates global states — tuples
   of interned local-derivative indices, one per leaf (design decision
   D3: interning keeps states tiny and hashable) — applying the SOS
   rules of :mod:`repro.pepa.semantics` at each node.

The result is a :class:`StateSpace`: states, labelled transitions, leaf
metadata, and convenience queries used by the reward and passage-time
layers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import (
    CooperationError,
    IllFormedModelError,
    StateSpaceLimitError,
)
from repro.pepa.semantics import (
    TAU,
    ActiveRate,
    LocalTransition,
    PassiveRate,
    Rate,
    SequentialSemantics,
    cooperation_rate,
    rate_sum,
)
from repro.pepa.syntax import (
    Constant,
    Cooperation,
    Hiding,
    Model,
    ProcessTerm,
    expand_aggregations,
    unparse,
)

__all__ = ["derive", "StateSpace", "Transition", "Leaf"]


# ---------------------------------------------------------------------------
# Structure tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Leaf:
    """A sequential component position in the system equation."""

    index: int
    name: str
    initial: ProcessTerm


@dataclass(frozen=True)
class _CoopNode:
    left: object
    right: object
    actions: frozenset[str]


@dataclass(frozen=True)
class _HideNode:
    child: object
    actions: frozenset[str]


def _build_structure(term: ProcessTerm, leaves: list[Leaf], counters: dict[str, int]):
    """Split the system equation into static structure and leaves.

    Anything that is not a Cooperation or Hiding node at the top of a
    subterm becomes a sequential leaf; the sequential-only restriction
    below cooperation is enforced later during local derivation.
    """
    if isinstance(term, Cooperation):
        left = _build_structure(term.left, leaves, counters)
        right = _build_structure(term.right, leaves, counters)
        return _CoopNode(left, right, frozenset(term.actions))
    if isinstance(term, Hiding):
        child = _build_structure(term.process, leaves, counters)
        return _HideNode(child, frozenset(term.actions))
    base = term.name if isinstance(term, Constant) else "Component"
    n = counters.get(base, 0)
    counters[base] = n + 1
    name = base if n == 0 else f"{base}#{n}"
    leaf = Leaf(len(leaves), name, term)
    leaves.append(leaf)
    return leaf


# ---------------------------------------------------------------------------
# State space
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Transition:
    """A global transition ``source --(action, rate)--> target``."""

    source: int
    target: int
    action: str
    rate: float


@dataclass
class StateSpace:
    """The derived labelled transition system of a PEPA model.

    Attributes
    ----------
    model:
        The model this space was derived from.
    states:
        ``states[i]`` is the tuple of local-derivative indices, one per
        leaf, identifying global state ``i``.  State 0 is initial.
    transitions:
        All global transitions (parallel edges are *not* merged here —
        the CTMC layer aggregates; the derivation graph keeps them).
    leaves:
        Leaf metadata, aligned with state-tuple positions.
    local_terms:
        ``local_terms[k][j]`` is the ``j``-th local derivative (a
        sequential process term) of leaf ``k``.
    """

    model: Model
    states: list[tuple[int, ...]]
    transitions: list[Transition]
    leaves: list[Leaf]
    local_terms: list[list[ProcessTerm]]
    _out: list[list[Transition]] = field(default_factory=list, repr=False)
    _index: dict[tuple[int, ...], int] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if not self._out:
            out: list[list[Transition]] = [[] for _ in self.states]
            for tr in self.transitions:
                out[tr.source].append(tr)
            self._out = out
        if not self._index:
            self._index = {s: i for i, s in enumerate(self.states)}

    # -- basic queries -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of reachable global states."""
        return len(self.states)

    @property
    def initial_state(self) -> int:
        return 0

    @property
    def actions(self) -> frozenset[str]:
        """All action types labelling at least one transition."""
        return frozenset(tr.action for tr in self.transitions)

    def outgoing(self, state: int) -> list[Transition]:
        return self._out[state]

    def state_index(self, local_indices: tuple[int, ...]) -> int | None:
        return self._index.get(local_indices)

    def deadlocked_states(self) -> list[int]:
        """States with no outgoing transitions (absorbing)."""
        return [i for i, out in enumerate(self._out) if not out]

    def exit_rate(self, state: int) -> float:
        return sum(tr.rate for tr in self._out[state])

    # -- leaf-oriented queries -------------------------------------------------

    def leaf_index(self, name: str) -> int:
        for leaf in self.leaves:
            if leaf.name == name:
                return leaf.index
        raise KeyError(f"no component named {name!r}; have "
                       f"{[leaf.name for leaf in self.leaves]}")

    def local_term_of(self, state: int, leaf: int) -> ProcessTerm:
        """The local derivative of leaf ``leaf`` in global state ``state``."""
        return self.local_terms[leaf][self.states[state][leaf]]

    def local_label(self, leaf: int, local_index: int) -> str:
        term = self.local_terms[leaf][local_index]
        return term.name if isinstance(term, Constant) else unparse(term)

    def state_label(self, state: int) -> str:
        """Human-readable label, e.g. ``(Client_think, Server)``."""
        parts = [
            self.local_label(k, self.states[state][k]) for k in range(len(self.leaves))
        ]
        return "(" + ", ".join(parts) + ")"

    def states_where(self, predicate) -> list[int]:
        """All state indices satisfying ``predicate(space, index)``."""
        return [i for i in range(self.size) if predicate(self, i)]

    def states_with_local(self, leaf: int | str, term_name: str) -> list[int]:
        """States in which the given leaf is at the local derivative whose
        label equals ``term_name`` (a constant name or unparsed term)."""
        k = self.leaf_index(leaf) if isinstance(leaf, str) else leaf
        matching = {
            j
            for j in range(len(self.local_terms[k]))
            if self.local_label(k, j) == term_name
        }
        if not matching:
            known = [self.local_label(k, j) for j in range(len(self.local_terms[k]))]
            raise KeyError(
                f"leaf {self.leaves[k].name!r} has no local state {term_name!r}; "
                f"known local states: {known}"
            )
        return [i for i, s in enumerate(self.states) if s[k] in matching]


# ---------------------------------------------------------------------------
# Derivation
# ---------------------------------------------------------------------------


class _Deriver:
    def __init__(self, model: Model, max_states: int):
        self.model = model
        self.max_states = max_states
        self.semantics = SequentialSemantics(model)
        leaves: list[Leaf] = []
        system = expand_aggregations(model.system)
        self.structure = _build_structure(system, leaves, {})
        self.leaves = leaves
        # Interning tables: term -> local index, and the reverse list.
        self.local_index: list[dict[ProcessTerm, int]] = [dict() for _ in leaves]
        self.local_terms: list[list[ProcessTerm]] = [[] for _ in leaves]
        self.initial = tuple(self._intern(l.index, l.initial) for l in leaves)
        # Cache of local transitions in interned form:
        # (leaf, local_idx) -> tuple[(action, Rate, target_local_idx)]
        self._local_cache: dict[tuple[int, int], tuple] = {}

    def _intern(self, leaf: int, term: ProcessTerm) -> int:
        table = self.local_index[leaf]
        idx = table.get(term)
        if idx is None:
            idx = len(self.local_terms[leaf])
            table[term] = idx
            self.local_terms[leaf].append(term)
        return idx

    def _local_transitions(self, leaf: int, local_idx: int):
        key = (leaf, local_idx)
        cached = self._local_cache.get(key)
        if cached is None:
            term = self.local_terms[leaf][local_idx]
            raw: tuple[LocalTransition, ...] = self.semantics.transitions(term)
            cached = tuple(
                (tr.action, tr.rate, self._intern(leaf, tr.target)) for tr in raw
            )
            self._local_cache[key] = cached
        return cached

    def _node_transitions(self, node, state: tuple[int, ...]):
        """Transitions of a structure subtree in a given global state.

        Returns a list of ``(action, Rate, updates)`` where ``updates``
        is a tuple of ``(leaf_index, new_local_index)`` pairs.
        """
        if isinstance(node, Leaf):
            k = node.index
            return [
                (action, rate, ((k, tgt),))
                for action, rate, tgt in self._local_transitions(k, state[k])
            ]
        if isinstance(node, _HideNode):
            inner = self._node_transitions(node.child, state)
            return [
                (TAU if action in node.actions else action, rate, upd)
                for action, rate, upd in inner
            ]
        if isinstance(node, _CoopNode):
            lt = self._node_transitions(node.left, state)
            rt = self._node_transitions(node.right, state)
            out = []
            shared = node.actions
            for action, rate, upd in lt:
                if action not in shared:
                    out.append((action, rate, upd))
            for action, rate, upd in rt:
                if action not in shared:
                    out.append((action, rate, upd))
            if shared:
                # Group the shared-action transitions per side.
                lshared: dict[str, list] = {}
                rshared: dict[str, list] = {}
                for action, rate, upd in lt:
                    if action in shared:
                        lshared.setdefault(action, []).append((rate, upd))
                for action, rate, upd in rt:
                    if action in shared:
                        rshared.setdefault(action, []).append((rate, upd))
                for action in lshared.keys() & rshared.keys():
                    lefts = lshared[action]
                    rights = rshared[action]
                    ra_l = self._apparent(action, lefts)
                    ra_r = self._apparent(action, rights)
                    for r1, u1 in lefts:
                        for r2, u2 in rights:
                            rate = cooperation_rate(r1, ra_l, r2, ra_r)
                            out.append((action, rate, u1 + u2))
            return out
        raise AssertionError(f"unknown structure node {node!r}")

    @staticmethod
    def _apparent(action: str, entries: list) -> Rate:
        total: Rate | None = None
        for rate, _upd in entries:
            try:
                total = rate if total is None else rate_sum(total, rate)
            except CooperationError as exc:
                raise CooperationError(
                    f"apparent rate of shared action {action!r} is undefined: {exc}"
                ) from exc
        assert total is not None
        return total

    def run(self) -> StateSpace:
        states: list[tuple[int, ...]] = [self.initial]
        index: dict[tuple[int, ...], int] = {self.initial: 0}
        transitions: list[Transition] = []
        queue: deque[int] = deque([0])
        while queue:
            src = queue.popleft()
            state = states[src]
            for action, rate, updates in self._node_transitions(self.structure, state):
                if isinstance(rate, PassiveRate):
                    raise IllFormedModelError(
                        f"action {action!r} remains passive at the top level of the "
                        "system equation; every passive activity must cooperate "
                        "with an active partner"
                    )
                assert isinstance(rate, ActiveRate)
                new_state = list(state)
                for leaf_idx, local_idx in updates:
                    new_state[leaf_idx] = local_idx
                key = tuple(new_state)
                dst = index.get(key)
                if dst is None:
                    dst = len(states)
                    if dst >= self.max_states:
                        raise StateSpaceLimitError(
                            f"state space exceeds the configured limit of "
                            f"{self.max_states} states"
                        )
                    index[key] = dst
                    states.append(key)
                    queue.append(dst)
                transitions.append(Transition(src, dst, action, rate.value))
        return StateSpace(
            model=self.model,
            states=states,
            transitions=transitions,
            leaves=self.leaves,
            local_terms=self.local_terms,
        )


def derive(model: Model, max_states: int = 1_000_000) -> StateSpace:
    """Derive the full reachable state space of a PEPA model.

    Results are served through the engine's content-addressed cache:
    deriving the same model (structurally, not by object identity) with
    the same ``max_states`` returns a cached copy, and every call is
    timed in the ``derive`` metrics entry.

    Parameters
    ----------
    model:
        A parsed :class:`repro.pepa.syntax.Model`.
    max_states:
        Hard cap guarding against state-space explosion; exceeding it
        raises :class:`repro.errors.StateSpaceLimitError` rather than
        exhausting memory.
    """
    from repro.engine.cache import cached
    from repro.engine.metrics import get_registry

    with get_registry().timer("derive") as gauges:
        space, _status = cached(
            "derive",
            (model, max_states),
            lambda: _Deriver(model, max_states).run(),
        )
        gauges["n_states"] = space.size
    return space
