"""Explicit state-space derivation for PEPA models.

A PEPA model's cooperation/hiding structure is static: only the local
states of the sequential components at the leaves evolve.  Derivation
therefore proceeds in two phases:

1. The system equation is analyzed into a *structure tree* of
   cooperation and hiding nodes over sequential leaves.
2. A breadth-first reachability sweep enumerates global states — tuples
   of interned local-derivative indices, one per leaf (design decision
   D3: interning keeps states tiny and hashable) — applying the SOS
   rules of :mod:`repro.pepa.semantics` at each node.

The sweep is the hot path of every analysis in the repository, so it is
memoized compositionally: each structure node's transition set depends
only on the *sub-state* under that node (the projection of the global
state onto its leaves), and replicated-component models revisit the
same sub-states constantly.  :class:`_Deriver` keys a per-node memo
table on that projection and accumulates transitions straight into flat
``numpy`` arrays, from which the CTMC layer assembles its CSR generator
without ever materializing :class:`Transition` objects.

:func:`derive_reference` retains the naive single-walk derivation as an
oracle: same SOS rules, no memo, ``Transition`` objects throughout.
The fast path is property-tested and benchmarked against it
(``tests/pepa/test_derivation_fastpath.py``,
``benchmarks/bench_derive.py``) and produces bit-identical state
orderings, generators and seeded SSA streams.

The result is a :class:`StateSpace`: states, labelled transitions, leaf
metadata, and convenience queries used by the reward and passage-time
layers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from operator import itemgetter

import numpy as np

from repro.errors import (
    CooperationError,
    IllFormedModelError,
    StateSpaceLimitError,
)
from repro.pepa.semantics import (
    TAU,
    LocalTransition,
    PassiveRate,
    Rate,
    SequentialSemantics,
    cooperation_rate,
    rate_sum,
)
from repro.pepa.syntax import (
    Constant,
    Cooperation,
    Hiding,
    Model,
    ProcessTerm,
    expand_aggregations,
    unparse,
)

__all__ = ["derive", "derive_reference", "StateSpace", "Transition", "Leaf"]


# ---------------------------------------------------------------------------
# Structure tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Leaf:
    """A sequential component position in the system equation."""

    index: int
    name: str
    initial: ProcessTerm


@dataclass(frozen=True)
class _CoopNode:
    left: object
    right: object
    actions: frozenset[str]


@dataclass(frozen=True)
class _HideNode:
    child: object
    actions: frozenset[str]


def _build_structure(term: ProcessTerm, leaves: list[Leaf], counters: dict[str, int]):
    """Split the system equation into static structure and leaves.

    Anything that is not a Cooperation or Hiding node at the top of a
    subterm becomes a sequential leaf; the sequential-only restriction
    below cooperation is enforced later during local derivation.
    """
    if isinstance(term, Cooperation):
        left = _build_structure(term.left, leaves, counters)
        right = _build_structure(term.right, leaves, counters)
        return _CoopNode(left, right, frozenset(term.actions))
    if isinstance(term, Hiding):
        child = _build_structure(term.process, leaves, counters)
        return _HideNode(child, frozenset(term.actions))
    base = term.name if isinstance(term, Constant) else "Component"
    n = counters.get(base, 0)
    counters[base] = n + 1
    name = base if n == 0 else f"{base}#{n}"
    leaf = Leaf(len(leaves), name, term)
    leaves.append(leaf)
    return leaf


# ---------------------------------------------------------------------------
# State space
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Transition:
    """A global transition ``source --(action, rate)--> target``."""

    source: int
    target: int
    action: str
    rate: float


@dataclass(eq=False)
class StateSpace:
    """The derived labelled transition system of a PEPA model.

    Primary transition storage is four flat parallel arrays —
    ``trans_source``/``trans_target``/``trans_rate`` plus interned
    action codes — so the CTMC layer assembles its CSR generator
    directly from numpy buffers.  The :class:`Transition`-object view
    (:attr:`transitions`, :meth:`outgoing`) is materialized lazily for
    the label-oriented consumers (derivation graphs, probes, exporters).

    Attributes
    ----------
    model:
        The model this space was derived from.
    states:
        ``states[i]`` is the tuple of local-derivative indices, one per
        leaf, identifying global state ``i``.  State 0 is initial.
    leaves:
        Leaf metadata, aligned with state-tuple positions.
    local_terms:
        ``local_terms[k][j]`` is the ``j``-th local derivative (a
        sequential process term) of leaf ``k``.
    trans_source, trans_target, trans_rate, trans_action_code:
        Parallel arrays, one entry per global transition in derivation
        order.  Parallel edges are *not* merged here — the CTMC layer
        aggregates; the derivation graph keeps them.
    action_names:
        Decode table for ``trans_action_code``, in first-use order.
    """

    model: Model
    states: list[tuple[int, ...]]
    leaves: list[Leaf]
    local_terms: list[list[ProcessTerm]]
    trans_source: np.ndarray
    trans_target: np.ndarray
    trans_rate: np.ndarray
    trans_action_code: np.ndarray
    action_names: tuple[str, ...]
    _transitions: list[Transition] | None = field(default=None, repr=False)
    _out: list[list[Transition]] | None = field(default=None, repr=False)
    _index: dict[tuple[int, ...], int] | None = field(default=None, repr=False)

    @classmethod
    def from_transitions(
        cls,
        model: Model,
        states: list[tuple[int, ...]],
        transitions: list[Transition],
        leaves: list[Leaf],
        local_terms: list[list[ProcessTerm]],
    ) -> "StateSpace":
        """Build a space from a ``Transition`` list (the reference path)."""
        m = len(transitions)
        codes: dict[str, int] = {}
        names: list[str] = []
        code_arr = np.empty(m, dtype=np.intp)
        for i, tr in enumerate(transitions):
            code = codes.get(tr.action)
            if code is None:
                code = codes[tr.action] = len(names)
                names.append(tr.action)
            code_arr[i] = code
        space = cls(
            model=model,
            states=states,
            leaves=leaves,
            local_terms=local_terms,
            trans_source=np.fromiter((t.source for t in transitions), np.intp, m),
            trans_target=np.fromiter((t.target for t in transitions), np.intp, m),
            trans_rate=np.fromiter((t.rate for t in transitions), np.float64, m),
            trans_action_code=code_arr,
            action_names=tuple(names),
        )
        space._transitions = list(transitions)
        return space

    # -- basic queries -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of reachable global states."""
        return len(self.states)

    @property
    def n_transitions(self) -> int:
        """Number of global transitions (parallel edges counted apart)."""
        return int(self.trans_source.size)

    @property
    def initial_state(self) -> int:
        return 0

    @property
    def actions(self) -> frozenset[str]:
        """All action types labelling at least one transition."""
        return frozenset(self.action_names)

    @property
    def transitions(self) -> list[Transition]:
        """The ``Transition``-object view, built on first use."""
        if self._transitions is None:
            names = self.action_names
            self._transitions = [
                Transition(int(s), int(t), names[c], float(r))
                for s, t, c, r in zip(
                    self.trans_source,
                    self.trans_target,
                    self.trans_action_code,
                    self.trans_rate,
                )
            ]
        return self._transitions

    def outgoing(self, state: int) -> list[Transition]:
        if self._out is None:
            out: list[list[Transition]] = [[] for _ in self.states]
            for tr in self.transitions:
                out[tr.source].append(tr)
            self._out = out
        return self._out[state]

    def state_index(self, local_indices: tuple[int, ...]) -> int | None:
        if self._index is None:
            self._index = {s: i for i, s in enumerate(self.states)}
        return self._index.get(local_indices)

    def deadlocked_states(self) -> list[int]:
        """States the CTMC can never leave.

        A state counts as deadlocked when it has no outgoing transition
        that *changes* the state: pure self-loops do not move the
        process, so a state whose only activities are self-loops is
        absorbing exactly like one with no activities at all.
        """
        src = self.trans_source
        proper = src[src != self.trans_target]
        has_exit = np.zeros(self.size, dtype=bool)
        has_exit[proper] = True
        return [int(i) for i in np.flatnonzero(~has_exit)]

    def exit_rate(self, state: int) -> float:
        """Total rate of leaving ``state`` — the CTMC holding rate.

        Self-loops are excluded: a transition with ``source == target``
        changes neither the state nor the distribution over states, so
        it contributes to neither the holding time nor the jump
        probabilities, and ``exit_rate(i)`` always equals
        ``-generator[i, i]``.
        """
        mask = (self.trans_source == state) & (self.trans_target != state)
        return float(self.trans_rate[mask].sum())

    # -- leaf-oriented queries -------------------------------------------------

    def leaf_index(self, name: str) -> int:
        for leaf in self.leaves:
            if leaf.name == name:
                return leaf.index
        raise KeyError(f"no component named {name!r}; have "
                       f"{[leaf.name for leaf in self.leaves]}")

    def local_term_of(self, state: int, leaf: int) -> ProcessTerm:
        """The local derivative of leaf ``leaf`` in global state ``state``."""
        return self.local_terms[leaf][self.states[state][leaf]]

    def local_label(self, leaf: int, local_index: int) -> str:
        term = self.local_terms[leaf][local_index]
        return term.name if isinstance(term, Constant) else unparse(term)

    def state_label(self, state: int) -> str:
        """Human-readable label, e.g. ``(Client_think, Server)``."""
        parts = [
            self.local_label(k, self.states[state][k]) for k in range(len(self.leaves))
        ]
        return "(" + ", ".join(parts) + ")"

    def states_where(self, predicate) -> list[int]:
        """All state indices satisfying ``predicate(space, index)``."""
        return [i for i in range(self.size) if predicate(self, i)]

    def states_with_local(self, leaf: int | str, term_name: str) -> list[int]:
        """States in which the given leaf is at the local derivative whose
        label equals ``term_name`` (a constant name or unparsed term)."""
        k = self.leaf_index(leaf) if isinstance(leaf, str) else leaf
        matching = {
            j
            for j in range(len(self.local_terms[k]))
            if self.local_label(k, j) == term_name
        }
        if not matching:
            known = [self.local_label(k, j) for j in range(len(self.local_terms[k]))]
            raise KeyError(
                f"leaf {self.leaves[k].name!r} has no local state {term_name!r}; "
                f"known local states: {known}"
            )
        return [i for i, s in enumerate(self.states) if s[k] in matching]


# ---------------------------------------------------------------------------
# Derivation
# ---------------------------------------------------------------------------


class _DerivationBase:
    """Structure analysis and local-transition interning shared by the
    memoized fast deriver and the naive reference deriver."""

    def __init__(self, model: Model, max_states: int):
        self.model = model
        self.max_states = max_states
        self.semantics = SequentialSemantics(model)
        leaves: list[Leaf] = []
        system = expand_aggregations(model.system)
        self.structure = _build_structure(system, leaves, {})
        self.leaves = leaves
        # Interning tables: term -> local index, and the reverse list.
        self.local_index: list[dict[ProcessTerm, int]] = [dict() for _ in leaves]
        self.local_terms: list[list[ProcessTerm]] = [[] for _ in leaves]
        self.initial = tuple(self._intern(l.index, l.initial) for l in leaves)
        # Cache of local transitions in interned form:
        # (leaf, local_idx) -> tuple[(action, Rate, target_local_idx)]
        self._local_cache: dict[tuple[int, int], tuple] = {}

    def _intern(self, leaf: int, term: ProcessTerm) -> int:
        table = self.local_index[leaf]
        idx = table.get(term)
        if idx is None:
            idx = len(self.local_terms[leaf])
            table[term] = idx
            self.local_terms[leaf].append(term)
        return idx

    def _local_transitions(self, leaf: int, local_idx: int):
        key = (leaf, local_idx)
        cached = self._local_cache.get(key)
        if cached is None:
            term = self.local_terms[leaf][local_idx]
            raw: tuple[LocalTransition, ...] = self.semantics.transitions(term)
            cached = tuple(
                (tr.action, tr.rate, self._intern(leaf, tr.target)) for tr in raw
            )
            self._local_cache[key] = cached
        return cached

    @staticmethod
    def _apparent(action: str, entries: list) -> Rate:
        total: Rate | None = None
        for rate, _upd in entries:
            try:
                total = rate if total is None else rate_sum(total, rate)
            except CooperationError as exc:
                raise CooperationError(
                    f"apparent rate of shared action {action!r} is undefined: {exc}"
                ) from exc
        assert total is not None
        return total

    @staticmethod
    def _combine_cooperation(lt, rt, shared: frozenset[str], apparent) -> list:
        """SOS cooperation rule over the two sides' transition lists.

        Shared actions iterate in the *left side's enablement order*
        (not set-intersection hash order), so the transition order — and
        with it state numbering, the cached generator and seeded SSA
        streams — is independent of ``PYTHONHASHSEED``.
        """
        out = []
        for entry in lt:
            if entry[0] not in shared:
                out.append(entry)
        for entry in rt:
            if entry[0] not in shared:
                out.append(entry)
        if shared:
            # Group the shared-action transitions per side.
            lshared: dict[str, list] = {}
            rshared: dict[str, list] = {}
            for action, rate, upd in lt:
                if action in shared:
                    lshared.setdefault(action, []).append((rate, upd))
            for action, rate, upd in rt:
                if action in shared:
                    rshared.setdefault(action, []).append((rate, upd))
            for action, lefts in lshared.items():
                rights = rshared.get(action)
                if rights is None:
                    continue
                ra_l = apparent(action, lefts)
                ra_r = apparent(action, rights)
                for r1, u1 in lefts:
                    for r2, u2 in rights:
                        rate = cooperation_rate(r1, ra_l, r2, ra_r)
                        out.append((action, rate, u1 + u2))
        return out

    def _limit_error(self, n_states: int, n_transitions: int) -> StateSpaceLimitError:
        return StateSpaceLimitError(
            f"state space exceeds the configured limit of {self.max_states} "
            f"states (derivation stopped after reaching {n_states} states and "
            f"{n_transitions} transitions; no partial state space is retained)"
        )

    def _top_level_passive_error(self, action: str) -> IllFormedModelError:
        return IllFormedModelError(
            f"action {action!r} remains passive at the top level of the "
            "system equation; every passive activity must cooperate "
            "with an active partner"
        )


def _grow(arr: np.ndarray, capacity: int) -> np.ndarray:
    out = np.empty(capacity, dtype=arr.dtype)
    out[: arr.size] = arr
    return out


class _Deriver(_DerivationBase):
    """Memoized compositional derivation with flat-array accumulation.

    The structure tree is numbered post-order into parallel lists so the
    recursion works on integer node ids.  Each node's memo table maps
    the sub-state signature — the projection of the global state onto
    the leaves under that node, extracted with a precompiled
    ``itemgetter`` — to the node's transition tuple.  Replicated
    components make these projections collide constantly, turning the
    recursive SOS walk into dictionary lookups.

    On this path rates travel as plain ``(value, is_passive)`` floats
    rather than :class:`~repro.pepa.semantics.Rate` objects: the
    cooperation arithmetic below replicates ``rate_sum`` / ``rate_min``
    / ``cooperation_rate`` operation-for-operation (same associativity,
    same operand order), so the resulting float rates are bit-identical
    to the reference walk while skipping the dataclass allocations that
    dominate its profile.
    """

    def __init__(self, model: Model, max_states: int):
        super().__init__(model, max_states)
        self._nodes: list = []
        self._kids: list[tuple[int, ...]] = []
        self._leafsets: list[tuple[int, ...]] = []
        self._getters: list = []
        self._memos: list[dict] = []
        self.root = self._number(self.structure)
        self.memo_hits = 0
        self.memo_misses = 0
        # (leaf, local_idx) -> tuple[(action, value, is_passive, updates)]
        self._fast_local_cache: dict[tuple[int, int], tuple] = {}
        # Optional state canonicalization hook: a callable mapping a
        # global state tuple to the representative of its symmetry
        # orbit.  When set (the population-form deriver), the BFS
        # frontier only ever contains one state per orbit; None (the
        # explicit path) leaves the sweep bit-identical to the
        # reference walk.
        self._canonical = None

    def _number(self, node) -> int:
        if isinstance(node, Leaf):
            kids: tuple[int, ...] = ()
            leafset: tuple[int, ...] = (node.index,)
        elif isinstance(node, _HideNode):
            kids = (self._number(node.child),)
            leafset = self._leafsets[kids[0]]
        elif isinstance(node, _CoopNode):
            kids = (self._number(node.left), self._number(node.right))
            leafset = self._leafsets[kids[0]] + self._leafsets[kids[1]]
        else:  # pragma: no cover - _build_structure emits nothing else
            raise AssertionError(f"unknown structure node {node!r}")
        nid = len(self._nodes)
        self._nodes.append(node)
        self._kids.append(kids)
        self._leafsets.append(leafset)
        # itemgetter with one index returns the bare element — a cheaper
        # memo key than a 1-tuple, and still unique per sub-state.
        self._getters.append(itemgetter(*leafset))
        self._memos.append({})
        return nid

    def _fast_local(self, leaf: int, local_idx: int):
        key = (leaf, local_idx)
        cached = self._fast_local_cache.get(key)
        if cached is None:
            cached = tuple(
                (
                    action,
                    rate.weight if rate.is_passive else rate.value,
                    rate.is_passive,
                    ((leaf, tgt),),
                )
                for action, rate, tgt in self._local_transitions(leaf, local_idx)
            )
            self._fast_local_cache[key] = cached
        return cached

    @staticmethod
    def _apparent_fast(action: str, entries: list) -> tuple[float, bool]:
        """Float mirror of :meth:`_apparent`: same left-associated sum."""
        first = entries[0]
        total, passive = first[1], first[2]
        for entry in entries[1:]:
            if entry[2] is not passive:
                raise CooperationError(
                    f"apparent rate of shared action {action!r} is undefined: "
                    "a component enables both active and passive activities "
                    "of the same action type; the apparent rate is undefined"
                )
            total += entry[1]
        return total, passive

    @classmethod
    def _combine_fast(cls, lt, rt, shared: frozenset[str]) -> list:
        """Float mirror of :meth:`_combine_cooperation`.

        Same transition order (unsynchronized left, unsynchronized
        right, then shared actions in the left side's enablement order)
        and the same multiplication order as ``cooperation_rate``, so
        rates and orderings are bit-identical to the reference walk.
        """
        out = []
        for entry in lt:
            if entry[0] not in shared:
                out.append(entry)
        for entry in rt:
            if entry[0] not in shared:
                out.append(entry)
        if shared:
            lshared: dict[str, list] = {}
            rshared: dict[str, list] = {}
            for entry in lt:
                if entry[0] in shared:
                    lshared.setdefault(entry[0], []).append(entry)
            for entry in rt:
                if entry[0] in shared:
                    rshared.setdefault(entry[0], []).append(entry)
            for action, lefts in lshared.items():
                rights = rshared.get(action)
                if rights is None:
                    continue
                va_l, pa_l = cls._apparent_fast(action, lefts)
                va_r, pa_r = cls._apparent_fast(action, rights)
                if pa_l and pa_r:
                    shared_min, passive = min(va_l, va_r), True
                elif pa_l:
                    shared_min, passive = va_r, False
                elif pa_r:
                    shared_min, passive = va_l, False
                else:
                    shared_min, passive = min(va_l, va_r), False
                for _a1, v1, _p1, u1 in lefts:
                    f1 = v1 / va_l
                    for _a2, v2, _p2, u2 in rights:
                        rate = f1 * (v2 / va_r) * shared_min
                        out.append((action, rate, passive, u1 + u2))
        return out

    def _node_transitions(self, nid: int, state: tuple[int, ...]):
        """Transitions of a structure subtree in a given global state.

        Returns a tuple of ``(action, value, is_passive, updates)``
        where ``value`` is the float rate (or passive weight) and
        ``updates`` is a tuple of ``(leaf_index, new_local_index)``
        pairs.
        """
        memo = self._memos[nid]
        key = self._getters[nid](state)
        result = memo.get(key)
        if result is not None:
            self.memo_hits += 1
            return result
        self.memo_misses += 1
        node = self._nodes[nid]
        if isinstance(node, Leaf):
            result = self._fast_local(node.index, state[node.index])
        elif isinstance(node, _HideNode):
            inner = self._node_transitions(self._kids[nid][0], state)
            hidden = node.actions
            result = tuple(
                (TAU if action in hidden else action, value, passive, upd)
                for action, value, passive, upd in inner
            )
        else:
            lt = self._node_transitions(self._kids[nid][0], state)
            rt = self._node_transitions(self._kids[nid][1], state)
            shared = node.actions
            if not shared:
                # Pure interleaving (e.g. `||` and expanded replica
                # arrays): left entries then right entries, exactly what
                # _combine_fast produces for an empty cooperation set.
                result = lt + rt
            else:
                result = tuple(self._combine_fast(lt, rt, shared))
        memo[key] = result
        return result

    def run(self) -> StateSpace:
        canon = self._canonical
        initial = self.initial if canon is None else canon(self.initial)
        states: list[tuple[int, ...]] = [initial]
        index: dict[tuple[int, ...], int] = {initial: 0}
        queue: deque[int] = deque([0])
        capacity = 256
        src = np.empty(capacity, dtype=np.intp)
        dst = np.empty(capacity, dtype=np.intp)
        rates = np.empty(capacity, dtype=np.float64)
        acts = np.empty(capacity, dtype=np.intp)
        m = 0
        action_codes: dict[str, int] = {}
        action_names: list[str] = []
        node_transitions = self._node_transitions
        root = self.root
        max_states = self.max_states
        while queue:
            s = queue.popleft()
            state = states[s]
            for action, value, passive, updates in node_transitions(root, state):
                if passive:
                    raise self._top_level_passive_error(action)
                if len(updates) == 1:
                    leaf_idx, local_idx = updates[0]
                    key = state[:leaf_idx] + (local_idx,) + state[leaf_idx + 1:]
                else:
                    new_state = list(state)
                    for leaf_idx, local_idx in updates:
                        new_state[leaf_idx] = local_idx
                    key = tuple(new_state)
                if canon is not None:
                    key = canon(key)
                d = index.get(key)
                if d is None:
                    d = len(states)
                    if d >= max_states:
                        raise self._limit_error(len(states), m)
                    index[key] = d
                    states.append(key)
                    queue.append(d)
                code = action_codes.get(action)
                if code is None:
                    code = action_codes[action] = len(action_names)
                    action_names.append(action)
                if m == capacity:
                    capacity *= 2
                    src = _grow(src, capacity)
                    dst = _grow(dst, capacity)
                    rates = _grow(rates, capacity)
                    acts = _grow(acts, capacity)
                src[m] = s
                dst[m] = d
                rates[m] = value
                acts[m] = code
                m += 1
        return StateSpace(
            model=self.model,
            states=states,
            leaves=self.leaves,
            local_terms=self.local_terms,
            trans_source=src[:m].copy(),
            trans_target=dst[:m].copy(),
            trans_rate=rates[:m].copy(),
            trans_action_code=acts[:m].copy(),
            action_names=tuple(action_names),
        )


class _ReferenceDeriver(_DerivationBase):
    """The naive derivation: a fresh recursive SOS walk per state, with
    ``Transition`` objects on the hot path and no memoization.  Retained
    as the oracle the fast path is property-tested and benchmarked
    against; must stay semantically identical, only slower."""

    def _node_transitions(self, node, state: tuple[int, ...]):
        if isinstance(node, Leaf):
            k = node.index
            return [
                (action, rate, ((k, tgt),))
                for action, rate, tgt in self._local_transitions(k, state[k])
            ]
        if isinstance(node, _HideNode):
            inner = self._node_transitions(node.child, state)
            return [
                (TAU if action in node.actions else action, rate, upd)
                for action, rate, upd in inner
            ]
        if isinstance(node, _CoopNode):
            lt = self._node_transitions(node.left, state)
            rt = self._node_transitions(node.right, state)
            return self._combine_cooperation(lt, rt, node.actions, self._apparent)
        raise AssertionError(f"unknown structure node {node!r}")

    def run(self) -> StateSpace:
        states: list[tuple[int, ...]] = [self.initial]
        index: dict[tuple[int, ...], int] = {self.initial: 0}
        transitions: list[Transition] = []
        queue: deque[int] = deque([0])
        while queue:
            src = queue.popleft()
            state = states[src]
            for action, rate, updates in self._node_transitions(self.structure, state):
                if isinstance(rate, PassiveRate):
                    raise self._top_level_passive_error(action)
                new_state = list(state)
                for leaf_idx, local_idx in updates:
                    new_state[leaf_idx] = local_idx
                key = tuple(new_state)
                dst = index.get(key)
                if dst is None:
                    dst = len(states)
                    if dst >= self.max_states:
                        raise self._limit_error(len(states), len(transitions))
                    index[key] = dst
                    states.append(key)
                    queue.append(dst)
                transitions.append(Transition(src, dst, action, rate.value))
        return StateSpace.from_transitions(
            model=self.model,
            states=states,
            transitions=transitions,
            leaves=self.leaves,
            local_terms=self.local_terms,
        )


def derive(model: Model, max_states: int = 1_000_000) -> StateSpace:
    """Derive the full reachable state space of a PEPA model.

    Runs the memoized fast path (:class:`_Deriver`).  Results are served
    through the engine's content-addressed cache: deriving the same
    model (structurally, not by object identity) with the same
    ``max_states`` returns a cached copy.  Every call is timed in the
    ``derive`` metrics entry with ``n_states``/``n_transitions`` gauges,
    and memo-table effectiveness is counted under ``derive.memo_hit`` /
    ``derive.memo_miss``.

    A derivation that exceeds ``max_states`` raises
    :class:`repro.errors.StateSpaceLimitError` carrying the reached
    state/transition counts; the exception propagates *uncached*, so no
    partially-derived space can escape, via the cache or otherwise.

    Parameters
    ----------
    model:
        A parsed :class:`repro.pepa.syntax.Model`.
    max_states:
        Hard cap guarding against state-space explosion; exceeding it
        raises :class:`repro.errors.StateSpaceLimitError` rather than
        exhausting memory.
    """
    from repro.engine.cache import cached
    from repro.engine.metrics import get_registry

    registry = get_registry()
    with registry.timer("derive") as gauges:

        def compute() -> StateSpace:
            deriver = _Deriver(model, max_states)
            space = deriver.run()
            registry.increment("derive.memo_hit", deriver.memo_hits)
            registry.increment("derive.memo_miss", deriver.memo_misses)
            return space

        space, _status = cached("derive", (model, max_states), compute)
        gauges["n_states"] = space.size
        gauges["n_transitions"] = space.n_transitions
    return space


def derive_reference(model: Model, max_states: int = 1_000_000) -> StateSpace:
    """Naive reference derivation (no memoization, no flat arrays).

    Semantically identical to :func:`derive` — same state ordering, same
    transition sequence — but recomputes every structure node per state.
    Never cached; timed under ``derive.naive``.  Exists as the oracle
    for the fast path's property tests and benchmarks, and as the
    ``naive`` backend of the IR registry's ``derive`` capability.
    """
    from repro.engine.metrics import get_registry

    with get_registry().timer("derive.naive") as gauges:
        space = _ReferenceDeriver(model, max_states).run()
        gauges["n_states"] = space.size
        gauges["n_transitions"] = space.n_transitions
    return space
