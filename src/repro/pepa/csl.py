"""CSL model checking over PEPA CTMCs.

The paper places PEPA next to PRISM (Hinton et al.) in the
quantitative-analysis toolbox; besides exporting chains to PRISM
(:mod:`repro.pepa.export`), this module checks the core of Continuous
Stochastic Logic directly:

    Φ ::= true | ap | ¬Φ | Φ ∧ Φ | Φ ∨ Φ
        | P ⋈ p [ X Φ ]                    (next)
        | P ⋈ p [ Φ U[t1, t2] Φ ]          (time-bounded until)
        | P ⋈ p [ Φ U Φ ]                  (unbounded until)
        | S ⋈ p [ Φ ]                      (steady state)

Atomic propositions are state predicates — usually
:func:`label_ap`/`local_ap` over component derivatives.  Checking is
the standard recursive algorithm: every formula evaluates to the set of
satisfying states; probability operators compute per-start-state
probability vectors:

* **next**: one embedded-DTMC step, ``u = P_embed @ 1_Φ``;
* **bounded until** ``Φ U[0,t] Ψ``: make ``Ψ`` absorbing and ``¬Φ∧¬Ψ``
  absorbing-losing, then one *backward* uniformization sweep gives the
  probability from every start state simultaneously;
* **until** ``Φ U[t1,t2] Ψ`` with ``t1 > 0``: the textbook two-phase
  product — survive inside ``Φ`` until ``t1``, then reach ``Ψ`` through
  ``Φ`` within ``t2 − t1``;
* **unbounded until**: the linear-system limit (absorbing reachability);
* **steady state**: for irreducible chains, ``π(Φ)`` compared once
  (the same verdict for every state).

`prob_*` functions expose the raw vectors for quantitative queries
(`P=? [...]` in PRISM syntax).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import NumericsError, PepaError
from repro.numerics.transient import backward_transient
from repro.pepa.ctmc import CTMC

__all__ = [
    "Formula",
    "TrueFormula",
    "Atomic",
    "Not",
    "And",
    "Or",
    "Next",
    "Until",
    "SteadyStateOp",
    "ProbOp",
    "label_ap",
    "local_ap",
    "check",
    "satisfying_states",
    "prob_until",
    "prob_next",
    "prob_steady",
]


# ---------------------------------------------------------------------------
# Formula AST
# ---------------------------------------------------------------------------


class Formula:
    """Base class for CSL state formulas."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """``true`` — satisfied everywhere."""


@dataclass(frozen=True)
class Atomic(Formula):
    """An atomic proposition: a predicate over (space, state index)."""

    name: str
    predicate: Callable[[object, int], bool]


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Next(Formula):
    """Path formula ``X Φ`` (must sit under a :class:`ProbOp`)."""

    operand: Formula


@dataclass(frozen=True)
class Until(Formula):
    """Path formula ``Φ U[t1, t2] Ψ``; ``t2 = inf`` for unbounded."""

    left: Formula
    right: Formula
    t1: float = 0.0
    t2: float = float("inf")

    def __post_init__(self):
        if self.t1 < 0 or self.t2 < self.t1:
            raise PepaError(f"bad until interval [{self.t1}, {self.t2}]")


@dataclass(frozen=True)
class ProbOp(Formula):
    """``P ⋈ p [path]`` — probability threshold on a path formula."""

    comparison: str
    threshold: float
    path: Formula

    def __post_init__(self):
        if self.comparison not in (">=", ">", "<=", "<"):
            raise PepaError(f"bad comparison {self.comparison!r}")
        if not 0.0 <= self.threshold <= 1.0:
            raise PepaError(f"probability threshold {self.threshold} outside [0, 1]")
        if not isinstance(self.path, (Next, Until)):
            raise PepaError("P operator needs a Next or Until path formula")


@dataclass(frozen=True)
class SteadyStateOp(Formula):
    """``S ⋈ p [Φ]`` — long-run probability threshold."""

    comparison: str
    threshold: float
    operand: Formula

    def __post_init__(self):
        if self.comparison not in (">=", ">", "<=", "<"):
            raise PepaError(f"bad comparison {self.comparison!r}")


def label_ap(label_fragment: str) -> Atomic:
    """AP: the state label contains ``label_fragment``."""
    return Atomic(
        name=f"label~{label_fragment}",
        predicate=lambda space, i: label_fragment in space.state_label(i),
    )


def local_ap(leaf: str, derivative: str) -> Atomic:
    """AP: component ``leaf`` is at local state ``derivative``."""

    def predicate(space, i: int) -> bool:
        k = space.leaf_index(leaf)
        return space.local_label(k, space.states[i][k]) == derivative

    return Atomic(name=f"{leaf}@{derivative}", predicate=predicate)


# ---------------------------------------------------------------------------
# Checking
# ---------------------------------------------------------------------------


def _indicator(chain: CTMC, states: set[int]) -> np.ndarray:
    z = np.zeros(chain.n_states)
    z[list(states)] = 1.0
    return z


def _compare(values: np.ndarray, comparison: str, threshold: float) -> set[int]:
    if comparison == ">=":
        mask = values >= threshold - 1e-12
    elif comparison == ">":
        mask = values > threshold + 1e-12
    elif comparison == "<=":
        mask = values <= threshold + 1e-12
    else:
        mask = values < threshold - 1e-12
    return set(np.nonzero(mask)[0].tolist())


def prob_next(chain: CTMC, target: set[int]) -> np.ndarray:
    """Per-state probability that the *next* jump lands in ``target``.

    States with no outgoing transitions never jump: probability 0.
    """
    Q = chain.generator
    exit_rates = -Q.diagonal()
    n = chain.n_states
    z = _indicator(chain, target)
    R = Q - sp.diags(Q.diagonal())
    flux = R @ z
    with np.errstate(divide="ignore", invalid="ignore"):
        u = np.where(exit_rates > 0, flux / np.where(exit_rates > 0, exit_rates, 1.0), 0.0)
    return np.clip(u, 0.0, 1.0)


def _absorbing_variant(
    chain: CTMC, keep: set[int]
) -> sp.csr_matrix:
    """Zero the outgoing rows of every state outside ``keep``."""
    Q = chain.generator.tolil(copy=True)
    for s in range(chain.n_states):
        if s not in keep:
            Q.rows[s] = []
            Q.data[s] = []
    return Q.tocsr()


def prob_until(
    chain: CTMC,
    phi: set[int],
    psi: set[int],
    t1: float = 0.0,
    t2: float = float("inf"),
) -> np.ndarray:
    """Per-start-state probability of ``Φ U[t1,t2] Ψ``."""
    n = chain.n_states
    if np.isinf(t2):
        return _prob_until_unbounded(chain, phi, psi)
    # Phase 2: within [0, t2-t1], reach Ψ travelling through Φ.  Make Ψ
    # absorbing (success) and ¬Φ∧¬Ψ absorbing (failure), then a backward
    # sweep of the indicator of Ψ.
    transient_states = (phi | psi)
    Q2 = _absorbing_variant(chain, keep=phi - psi)
    u2 = backward_transient(Q2, _indicator(chain, psi), t2 - t1)
    if t1 == 0.0:
        u = u2
    else:
        # Phase 1: survive inside Φ for t1, then continue with u2 from the
        # state reached.  Outside Φ everything is lost.
        Q1 = _absorbing_variant(chain, keep=phi)
        v = u2.copy()
        v[[s for s in range(n) if s not in phi]] = 0.0
        u = backward_transient(Q1, v, t1)
        u[[s for s in range(n) if s not in phi]] = 0.0
    return np.clip(u, 0.0, 1.0)


def _prob_until_unbounded(chain: CTMC, phi: set[int], psi: set[int]) -> np.ndarray:
    """Probability of eventually reaching Ψ through Φ (no deadline).

    Uses the standard prob0 precomputation: states of ``Φ \\ Ψ`` that
    cannot reach ``Ψ`` through ``Φ`` (by graph reachability) get
    probability 0 up front, which both prunes work and keeps the linear
    system nonsingular (closed classes inside ``Φ \\ Ψ`` would otherwise
    make ``Q_TT`` singular).
    """
    import scipy.sparse.linalg as spla

    n = chain.n_states
    u = np.zeros(n)
    u[list(psi)] = 1.0
    candidates = phi - psi
    if not candidates:
        return u
    # prob0: backward reachability from Ψ along edges inside Φ\Ψ.
    Q = chain.generator.tocsr()
    coo = Q.tocoo()
    incoming: dict[int, list[int]] = {}
    for src, dst, val in zip(coo.row, coo.col, coo.data):
        if src != dst and val > 0:
            incoming.setdefault(int(dst), []).append(int(src))
    can_reach: set[int] = set()
    frontier = list(psi)
    while frontier:
        state = frontier.pop()
        for pred in incoming.get(state, ()):
            if pred in candidates and pred not in can_reach:
                can_reach.add(pred)
                frontier.append(pred)
    trans = sorted(can_reach)
    if not trans:
        return u
    rows_T = Q[trans]
    Q_TT = rows_T[:, trans].tocsc()
    b = np.asarray(rows_T[:, sorted(psi)].sum(axis=1)).ravel()
    try:
        x = spla.splu(Q_TT).solve(-b)
    except RuntimeError as exc:
        raise NumericsError(f"unbounded-until system is singular: {exc}") from exc
    u[trans] = np.clip(x, 0.0, 1.0)
    return u


def prob_steady(chain: CTMC, states: set[int]) -> float:
    """Long-run probability of the state set (irreducible chains)."""
    pi = chain.steady_state().pi
    return float(pi[list(states)].sum())


def satisfying_states(chain: CTMC, formula: Formula) -> set[int]:
    """The set of states satisfying a CSL state formula."""
    space = chain.space
    if isinstance(formula, TrueFormula):
        return set(range(chain.n_states))
    if isinstance(formula, Atomic):
        return {i for i in range(chain.n_states) if formula.predicate(space, i)}
    if isinstance(formula, Not):
        return set(range(chain.n_states)) - satisfying_states(chain, formula.operand)
    if isinstance(formula, And):
        return satisfying_states(chain, formula.left) & satisfying_states(
            chain, formula.right
        )
    if isinstance(formula, Or):
        return satisfying_states(chain, formula.left) | satisfying_states(
            chain, formula.right
        )
    if isinstance(formula, ProbOp):
        path = formula.path
        if isinstance(path, Next):
            values = prob_next(chain, satisfying_states(chain, path.operand))
        else:
            values = prob_until(
                chain,
                satisfying_states(chain, path.left),
                satisfying_states(chain, path.right),
                path.t1,
                path.t2,
            )
        return _compare(values, formula.comparison, formula.threshold)
    if isinstance(formula, SteadyStateOp):
        p = prob_steady(chain, satisfying_states(chain, formula.operand))
        verdict = _compare(np.array([p]), formula.comparison, formula.threshold)
        return set(range(chain.n_states)) if verdict else set()
    if isinstance(formula, (Next, Until)):
        raise PepaError("path formulas must appear under a P operator")
    raise PepaError(f"unknown formula {formula!r}")


def check(chain: CTMC, formula: Formula, state: int | None = None) -> bool:
    """Does ``state`` (default: the initial state) satisfy ``formula``?"""
    sats = satisfying_states(chain, formula)
    s = chain.space.initial_state if state is None else int(state)
    return s in sats
