"""Derivation and activity graphs of PEPA models.

The PEPA workbench's "activity diagram" (paper Fig. 2) is the derivation
graph of a component: nodes are states, edges are activities labelled
``action, rate``.  We export:

* :func:`derivation_graph` — the full global derivation graph as a
  :class:`networkx.MultiDiGraph` (parallel activities preserved);
* :func:`activity_graph` — the projection onto one leaf component
  (local derivatives and the activities that move them), which is what
  the Fig. 2 diagram shows for machine ``M3``;
* :func:`to_dot` — Graphviz DOT text for either graph, so diagrams can
  be rendered outside this library.
"""

from __future__ import annotations

import networkx as nx

from repro.pepa.statespace import StateSpace

__all__ = ["derivation_graph", "activity_graph", "to_dot"]


def derivation_graph(space: StateSpace) -> nx.MultiDiGraph:
    """Full derivation graph: one node per global state.

    Node attributes: ``label`` (readable state label), ``initial``.
    Edge attributes: ``action``, ``rate``, ``label``.
    """
    g = nx.MultiDiGraph(name=f"derivation of {space.model.source_name}")
    for i in range(space.size):
        g.add_node(i, label=space.state_label(i), initial=(i == space.initial_state))
    for tr in space.transitions:
        g.add_edge(
            tr.source,
            tr.target,
            action=tr.action,
            rate=tr.rate,
            label=f"({tr.action}, {tr.rate:g})",
        )
    return g


def activity_graph(space: StateSpace, leaf: int | str) -> nx.MultiDiGraph:
    """Activity diagram of one component: nodes are the leaf's local
    derivatives; an edge ``u -> v`` labelled ``(a, r)`` is included when
    some global transition performs ``a`` at rate ``r`` while moving the
    leaf from ``u`` to ``v``.  Transitions that leave the leaf unchanged
    are omitted — they are other components' activities.
    """
    k = space.leaf_index(leaf) if isinstance(leaf, str) else leaf
    g = nx.MultiDiGraph(name=f"activity diagram of {space.leaves[k].name}")
    for j in range(len(space.local_terms[k])):
        g.add_node(j, label=space.local_label(k, j))
    # Dedup on the full activity (action AND rate): a component may move
    # u -> v via the same action at different rates (parallel edges from
    # distinct prefixes), and the diagram must show each of them.
    seen: set[tuple[int, int, str, float]] = set()
    for tr in space.transitions:
        u = space.states[tr.source][k]
        v = space.states[tr.target][k]
        if u == v:
            continue
        key = (u, v, tr.action, tr.rate)
        if key in seen:
            continue
        seen.add(key)
        g.add_edge(u, v, action=tr.action, rate=tr.rate, label=f"({tr.action}, {tr.rate:g})")
    # Drop unreachable local derivatives (interned but never visited).
    reachable = {space.states[i][k] for i in range(space.size)}
    g.remove_nodes_from([n for n in list(g.nodes) if n not in reachable])
    return g


def _quote(s: str) -> str:
    return '"' + s.replace('"', r"\"") + '"'


def to_dot(graph: nx.MultiDiGraph) -> str:
    """Render a derivation/activity graph as Graphviz DOT text.

    Deterministic output (sorted nodes and edges) so that native and
    containerized runs can be compared byte-for-byte.
    """
    lines = [f"digraph {_quote(graph.name or 'pepa')} {{", "  rankdir=LR;"]
    for node in sorted(graph.nodes):
        attrs = graph.nodes[node]
        label = attrs.get("label", str(node))
        shape = "doublecircle" if attrs.get("initial") else "circle"
        lines.append(f"  {node} [label={_quote(label)}, shape={shape}];")
    edges = sorted(
        graph.edges(keys=True, data=True), key=lambda e: (e[0], e[1], e[3].get("label", ""))
    )
    for u, v, _key, data in edges:
        label = data.get("label", "")
        lines.append(f"  {u} -> {v} [label={_quote(label)}];")
    lines.append("}")
    return "\n".join(lines) + "\n"
