"""Discrete-event simulation of PEPA models.

The PEPA Eclipse plug-in offers stochastic simulation alongside exact
CTMC analysis; this module provides the same back-end over a derived
:class:`~repro.pepa.ctmc.CTMC`:

* :func:`simulate` — one jump path (state index + action sequence),
  sampled on a fixed grid;
* :func:`simulate_ensemble` — streaming state-occupancy estimates whose
  mean converges to the uniformization transient solution (tested);
* :func:`empirical_throughput` — action counts per unit time along a
  path, the simulation estimate of the steady-state throughput reward.

Simulation complements exact analysis where the state space is too big
to derive — here it mainly serves as an independent cross-check of the
numerics (same chain, different algorithm, same answers).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import PepaError
from repro.pepa.ctmc import CTMC

__all__ = ["simulate", "simulate_ensemble", "empirical_throughput", "SimulatedPath", "OccupancyEstimate"]


@dataclass(frozen=True)
class SimulatedPath:
    """One realization of the chain.

    Attributes
    ----------
    times:
        The sample grid.
    states:
        State index occupied at each grid point.
    jump_times / jump_actions:
        The full event log (useful for empirical action statistics).
    """

    chain: CTMC
    times: np.ndarray
    states: np.ndarray
    jump_times: np.ndarray
    jump_actions: tuple[str, ...]

    @property
    def n_events(self) -> int:
        return self.jump_times.size

    def action_counts(self) -> dict[str, int]:
        """Completed activities by action type along the whole path."""
        return dict(Counter(self.jump_actions))


@dataclass(frozen=True)
class OccupancyEstimate:
    """Ensemble state-occupancy probabilities on a grid."""

    chain: CTMC
    times: np.ndarray
    occupancy: np.ndarray  # (len(times), n_states)
    n_runs: int

    def probability_of(self, state: int) -> np.ndarray:
        return self.occupancy[:, state]


def _prepare(chain: CTMC):
    """Per-state transition tables: (cum-rates, targets, actions)."""
    tables = []
    for s in range(chain.n_states):
        out = chain.space.outgoing(s)
        real = [tr for tr in out if tr.target != tr.source]
        rates = np.array([tr.rate for tr in real], dtype=np.float64)
        cum = np.cumsum(rates)
        targets = np.array([tr.target for tr in real], dtype=np.intp)
        actions = tuple(tr.action for tr in real)
        tables.append((cum, targets, actions))
    return tables


def simulate(
    chain: CTMC,
    times: Sequence[float],
    seed: int | np.random.Generator = 0,
    initial_state: int | None = None,
    max_events: int = 10_000_000,
) -> SimulatedPath:
    """Simulate one path of the chain, sampled on ``times``.

    Self-loop activities are dropped (they do not change the state and
    the CTMC generator already excludes them).
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    grid = np.asarray(times, dtype=np.float64)
    if grid.ndim != 1 or grid.size < 1:
        raise PepaError("simulation needs a non-empty time grid")
    if (np.diff(grid) <= 0).any():
        raise PepaError("simulation time grid must be strictly increasing")
    tables = _prepare(chain)
    state = chain.space.initial_state if initial_state is None else int(initial_state)
    if not 0 <= state < chain.n_states:
        raise PepaError(f"initial state {state} out of range")
    out_states = np.empty(grid.size, dtype=np.intp)
    out_states[0] = state
    jump_times: list[float] = []
    jump_actions: list[str] = []
    t = float(grid[0])
    cursor = 1
    while cursor < grid.size:
        cum, targets, actions = tables[state]
        if cum.size == 0 or cum[-1] <= 0.0:
            out_states[cursor:] = state  # absorbed
            break
        t += rng.exponential(1.0 / cum[-1])
        while cursor < grid.size and grid[cursor] <= t:
            out_states[cursor] = state
            cursor += 1
        if cursor >= grid.size:
            break
        k = int(np.searchsorted(cum, rng.random() * cum[-1], side="right"))
        k = min(k, targets.size - 1)
        jump_times.append(t)
        jump_actions.append(actions[k])
        state = int(targets[k])
        if len(jump_times) > max_events:
            raise PepaError(f"simulation exceeded {max_events} events")
    return SimulatedPath(
        chain=chain,
        times=grid,
        states=out_states,
        jump_times=np.asarray(jump_times),
        jump_actions=tuple(jump_actions),
    )


def simulate_ensemble(
    chain: CTMC,
    times: Sequence[float],
    n_runs: int = 200,
    seed: int = 0,
    initial_state: int | None = None,
) -> OccupancyEstimate:
    """Estimate state-occupancy probabilities from ``n_runs`` paths."""
    if n_runs < 1:
        raise PepaError("ensemble needs at least one run")
    rng = np.random.default_rng(seed)
    grid = np.asarray(times, dtype=np.float64)
    occ = np.zeros((grid.size, chain.n_states))
    for _ in range(n_runs):
        path = simulate(chain, grid, seed=rng, initial_state=initial_state)
        occ[np.arange(grid.size), path.states] += 1.0
    occ /= n_runs
    return OccupancyEstimate(chain=chain, times=grid, occupancy=occ, n_runs=n_runs)


def empirical_throughput(path: SimulatedPath, action: str) -> float:
    """Completed activities of ``action`` per unit time along the path.

    Converges to the steady-state throughput reward for ergodic chains
    as the horizon grows (cross-checked against the exact value in the
    tests).  Self-loop activities are not observed by the simulator, so
    models relying on self-loop rewards should use the exact engine.
    """
    horizon = float(path.times[-1] - path.times[0])
    if horizon <= 0:
        raise PepaError("throughput needs a positive simulation horizon")
    count = sum(1 for a in path.jump_actions if a == action)
    return count / horizon
