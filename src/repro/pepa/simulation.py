"""Discrete-event simulation of PEPA models.

The PEPA Eclipse plug-in offers stochastic simulation alongside exact
CTMC analysis; this module keeps that API but owns no simulation loop:
the chain lowers to :class:`repro.ir.MarkovIR` and the ``ssa``
capability of the backend registry does the stepping.

* :func:`simulate` — one jump path (state index + action sequence),
  sampled on a fixed grid;
* :func:`simulate_ensemble` — streaming state-occupancy estimates whose
  mean converges to the uniformization transient solution (tested);
* :func:`empirical_throughput` — action counts per unit time along a
  path, the simulation estimate of the steady-state throughput reward.

Ensembles follow the engine's determinism contract: one
``SeedSequence(seed)`` child per realization, fixed chunk boundaries,
so the same seed reproduces bit-identically under ``engine.parallel``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import PepaError, reraise_ir_errors
from repro.ir import solve
from repro.pepa.ctmc import CTMC

__all__ = ["simulate", "simulate_ensemble", "empirical_throughput", "SimulatedPath", "OccupancyEstimate"]


@dataclass(frozen=True)
class SimulatedPath:
    """One realization of the chain.

    Attributes
    ----------
    times:
        The sample grid.
    states:
        State index occupied at each grid point.
    jump_times / jump_actions:
        The full event log (useful for empirical action statistics).
    """

    chain: CTMC
    times: np.ndarray
    states: np.ndarray
    jump_times: np.ndarray
    jump_actions: tuple[str, ...]

    @property
    def n_events(self) -> int:
        return self.jump_times.size

    def action_counts(self) -> dict[str, int]:
        """Completed activities by action type along the whole path."""
        return dict(Counter(self.jump_actions))


@dataclass(frozen=True)
class OccupancyEstimate:
    """Ensemble state-occupancy probabilities on a grid."""

    chain: CTMC
    times: np.ndarray
    occupancy: np.ndarray  # (len(times), n_states)
    n_runs: int

    def probability_of(self, state: int) -> np.ndarray:
        return self.occupancy[:, state]


def simulate(
    chain: CTMC,
    times: Sequence[float],
    seed: int | np.random.Generator = 0,
    initial_state: int | None = None,
    max_events: int = 10_000_000,
) -> SimulatedPath:
    """Simulate one path of the chain, sampled on ``times``.

    Self-loop activities are dropped (they do not change the state and
    the CTMC generator already excludes them).
    """
    with reraise_ir_errors(PepaError):
        path = solve(
            chain.lower(),
            "ssa",
            times=times,
            seed=seed,
            initial=initial_state,
            max_events=max_events,
        )
    return SimulatedPath(
        chain=chain,
        times=path.times,
        states=path.states,
        jump_times=path.jump_times,
        jump_actions=path.jump_actions,
    )


def simulate_ensemble(
    chain: CTMC,
    times: Sequence[float],
    n_runs: int = 200,
    seed: int = 0,
    initial_state: int | None = None,
) -> OccupancyEstimate:
    """Estimate state-occupancy probabilities from ``n_runs`` paths.

    Realization ``i`` is driven by the ``i``-th ``SeedSequence(seed)``
    child (the engine-wide ensemble discipline), so the estimate is a
    pure function of ``(chain, times, n_runs, seed)`` and reproduces
    bit-identically under ``engine.parallel`` fan-out.
    """
    with reraise_ir_errors(PepaError):
        ens = solve(
            chain.lower(),
            "ssa",
            mode="ensemble",
            times=times,
            n_runs=n_runs,
            seed=seed,
            initial=initial_state,
        )
    return OccupancyEstimate(
        chain=chain, times=ens.times, occupancy=ens.mean, n_runs=n_runs
    )


def empirical_throughput(path: SimulatedPath, action: str) -> float:
    """Completed activities of ``action`` per unit time along the path.

    Converges to the steady-state throughput reward for ergodic chains
    as the horizon grows (cross-checked against the exact value in the
    tests).  Self-loop activities are not observed by the simulator, so
    models relying on self-loop rewards should use the exact engine.
    """
    horizon = float(path.times[-1] - path.times[0])
    if horizon <= 0:
        raise PepaError("throughput needs a positive simulation horizon")
    count = sum(1 for a in path.jump_actions if a == action)
    return count / horizon
