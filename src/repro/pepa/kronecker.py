"""Compositional generator construction via Kronecker sums.

For a system equation that composes components with **empty**
cooperation sets (pure interleaving, ``P || Q || ...``), the global
CTMC generator is the Kronecker sum of the component generators::

    Q = Q₁ ⊕ Q₂ ⊕ ... = Σ_i  I ⊗ ... ⊗ Q_i ⊗ ... ⊗ I

This is the classical compositional representation from the PEPA
literature (and the basis of Kronecker-structured solvers): the global
matrix is never enumerated transition-by-transition, only assembled
from tiny component matrices — the construction is *linear* in the
number of components instead of exponential state walking.

Scope: non-interacting composition only.  Any non-empty cooperation set
raises :class:`~repro.errors.CooperationError` (synchronized actions
need the generalized Kronecker *product* algebra with apparent-rate
normalization, which explicit derivation already covers).  Hiding is
fine — it only renames actions, which a generator cannot see.

The state ordering matches :func:`repro.pepa.statespace.derive`'s tuple
order **only up to enumeration order**; use :func:`kronecker_states` to
map indices to local-derivative tuples.  The equality of the two
constructions (up to the explicit engine's reachability restriction) is
property-tested in ``tests/pepa/test_kronecker.py``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import CooperationError, IllFormedModelError
from repro.pepa.semantics import ActiveRate, SequentialSemantics
from repro.pepa.syntax import (
    Constant,
    Cooperation,
    Hiding,
    Model,
    ProcessTerm,
    expand_aggregations,
    unparse,
)

__all__ = ["kronecker_generator", "kronecker_states", "component_generator"]


def _leaves(term: ProcessTerm) -> list[ProcessTerm]:
    """Sequential leaves of a pure-interleaving composition, left to right."""
    if isinstance(term, Cooperation):
        if term.actions:
            raise CooperationError(
                "Kronecker-sum construction requires empty cooperation sets; "
                f"found synchronization on {set(term.actions)} — use derive()"
            )
        return _leaves(term.left) + _leaves(term.right)
    if isinstance(term, Hiding):
        return _leaves(term.process)
    return [term]


def component_generator(
    model: Model, initial: ProcessTerm, max_states: int = 100_000
) -> tuple[sp.csr_matrix, list[ProcessTerm]]:
    """Generator of one sequential component's local chain.

    Returns ``(Q, derivatives)`` where ``derivatives[0]`` is the initial
    term and ``Q[i, j]`` the total local rate derivative ``i`` →
    derivative ``j`` (self-loops dropped).
    """
    semantics = SequentialSemantics(model)
    index: dict[ProcessTerm, int] = {initial: 0}
    order: list[ProcessTerm] = [initial]
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    cursor = 0
    while cursor < len(order):
        term = order[cursor]
        for tr in semantics.transitions(term):
            if not isinstance(tr.rate, ActiveRate):
                raise IllFormedModelError(
                    f"component {unparse(initial)!r} performs {tr.action!r} "
                    "passively; passive actions need a cooperation partner and "
                    "cannot appear in a pure-interleaving composition"
                )
            j = index.get(tr.target)
            if j is None:
                j = len(order)
                if j >= max_states:
                    raise IllFormedModelError(
                        f"component exceeds {max_states} local derivatives"
                    )
                index[tr.target] = j
                order.append(tr.target)
            if j != cursor:
                rows.append(cursor)
                cols.append(j)
                vals.append(tr.rate.value)
        cursor += 1
    n = len(order)
    R = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    R.sum_duplicates()
    exit_rates = np.asarray(R.sum(axis=1)).ravel()
    Q = (R - sp.diags(exit_rates, format="csr")).tocsr()
    return Q, order


def kronecker_generator(model: Model) -> sp.csr_matrix:
    """Global generator of a pure-interleaving model as a Kronecker sum.

    Raises
    ------
    CooperationError
        If any cooperation set in the system equation is non-empty.
    """
    system = expand_aggregations(model.system)
    leaves = _leaves(system)
    generators = [component_generator(model, leaf)[0] for leaf in leaves]
    Q = generators[0]
    for Qi in generators[1:]:
        # Kronecker sum: Q ⊕ Qi = Q ⊗ I + I ⊗ Qi.
        n_left = Q.shape[0]
        n_right = Qi.shape[0]
        Q = sp.kron(Q, sp.eye(n_right), format="csr") + sp.kron(
            sp.eye(n_left), Qi, format="csr"
        )
    return Q.tocsr()


def kronecker_states(model: Model) -> list[tuple[str, ...]]:
    """Labels of the Kronecker state ordering.

    State ``k`` of :func:`kronecker_generator` corresponds to the tuple
    of local-derivative labels returned at position ``k`` (row-major
    over the component derivative lists, leftmost component slowest).
    """
    system = expand_aggregations(model.system)
    leaves = _leaves(system)
    derivative_labels: list[list[str]] = []
    for leaf in leaves:
        _Q, order = component_generator(model, leaf)
        derivative_labels.append(
            [t.name if isinstance(t, Constant) else unparse(t) for t in order]
        )
    states: list[tuple[str, ...]] = [()]
    for labels in derivative_labels:
        states = [s + (l,) for s in states for l in labels]
    return states
