"""Compositional generator construction via generalized Kronecker algebra.

For a system equation that composes components with **empty**
cooperation sets (pure interleaving, ``P || Q || ...``), the global
CTMC generator is the classical Kronecker sum of the component
generators::

    Q = Q₁ ⊕ Q₂ ⊕ ... = Σ_i  I ⊗ ... ⊗ Q_i ⊗ ... ⊗ I

Synchronized cooperation generalizes the sum to the Kronecker
**product** algebra with apparent-rate normalization (Ding & Hillston's
numerical representation).  Each subtree of the system equation carries
one *active-rate* matrix ``W_a`` and one *passive-weight* matrix ``V_a``
per action type ``a``; the row sums of those matrices are exactly the
subtree's apparent rates.  At a cooperation node ``L <a,...> R``:

* non-shared actions interleave: ``W_a ⊗ I + I ⊗ W_a`` (and likewise
  for ``V_a``);
* a shared action combines the *row-normalized* probability matrices
  ``P = diag(1/rowsum) · M`` of both sides, rescaled row-wise by the
  PEPA bounded-capacity law — ``min`` of two active apparent rates, the
  active side's apparent rate against a passive partner, and ``min`` of
  the passive weights when both sides wait (the result stays passive,
  awaiting an active partner further up the tree).

Hiding renames matrices to ``tau``; a passive matrix surviving to the
top level is ill-formed.  The construction assembles the global matrix
from per-component matrices instead of walking states one by one, and
state ``k`` is the mixed-radix tuple over component derivative lists
(leftmost slowest) — the *full* product space, not just the reachable
part.  :func:`kronecker_markov_ir` restricts the product generator to
the component reachable from the initial state and is registered as the
``kronecker`` backend of the IR registry's ``derive`` capability;
equality with explicit derivation (up to that reachability restriction
and state reordering) is property-tested in
``tests/pepa/test_kronecker.py`` and
``tests/pepa/test_derivation_fastpath.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import (
    CooperationError,
    IllFormedModelError,
    StateSpaceLimitError,
)
from repro.pepa.semantics import TAU, ActiveRate, SequentialSemantics
from repro.pepa.syntax import (
    Constant,
    Cooperation,
    Hiding,
    Model,
    ProcessTerm,
    expand_aggregations,
    unparse,
)

__all__ = [
    "kronecker_generator",
    "kronecker_states",
    "kronecker_markov_ir",
    "component_generator",
]


def component_generator(
    model: Model, initial: ProcessTerm, max_states: int = 100_000
) -> tuple[sp.csr_matrix, list[ProcessTerm]]:
    """Generator of one sequential component's local chain.

    Returns ``(Q, derivatives)`` where ``derivatives[0]`` is the initial
    term and ``Q[i, j]`` the total local rate derivative ``i`` →
    derivative ``j`` (self-loops dropped).
    """
    semantics = SequentialSemantics(model)
    index: dict[ProcessTerm, int] = {initial: 0}
    order: list[ProcessTerm] = [initial]
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    cursor = 0
    while cursor < len(order):
        term = order[cursor]
        for tr in semantics.transitions(term):
            if not isinstance(tr.rate, ActiveRate):
                raise IllFormedModelError(
                    f"component {unparse(initial)!r} performs {tr.action!r} "
                    "passively; passive actions need a cooperation partner and "
                    "cannot appear in a pure-interleaving composition"
                )
            j = index.get(tr.target)
            if j is None:
                j = len(order)
                if j >= max_states:
                    raise IllFormedModelError(
                        f"component exceeds {max_states} local derivatives"
                    )
                index[tr.target] = j
                order.append(tr.target)
            if j != cursor:
                rows.append(cursor)
                cols.append(j)
                vals.append(tr.rate.value)
        cursor += 1
    n = len(order)
    R = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    R.sum_duplicates()
    exit_rates = np.asarray(R.sum(axis=1)).ravel()
    Q = (R - sp.diags(exit_rates, format="csr")).tocsr()
    return Q, order


# ---------------------------------------------------------------------------
# Generalized Kronecker parts
# ---------------------------------------------------------------------------


@dataclass
class _KronPart:
    """Per-action rate matrices of one subtree of the system equation.

    ``active[a][i, j]`` is the summed active rate of ``a``-activities
    moving the subtree from product-state ``i`` to ``j``; ``passive``
    holds the summed passive weights.  Row sums are the subtree's
    apparent rates.  Self-loops are kept — they cancel on the generator
    diagonal but participate in apparent rates.
    """

    labels: list[tuple[str, ...]]
    active: dict[str, sp.csr_matrix]
    passive: dict[str, sp.csr_matrix]

    @property
    def n(self) -> int:
        return len(self.labels)


def _row_sums(M: sp.csr_matrix) -> np.ndarray:
    return np.asarray(M.sum(axis=1)).ravel()


def _normalized(M: sp.csr_matrix, sums: np.ndarray) -> sp.csr_matrix:
    """Row-stochastic scaling ``diag(1/sums) @ M`` (zero rows stay zero)."""
    inv = np.zeros_like(sums)
    nz = sums > 0
    inv[nz] = 1.0 / sums[nz]
    return (sp.diags(inv) @ M).tocsr()


def _leaf_part(
    semantics: SequentialSemantics, initial: ProcessTerm, max_states: int
) -> _KronPart:
    """BFS a sequential component into per-action rate/weight matrices."""
    index: dict[ProcessTerm, int] = {initial: 0}
    order: list[ProcessTerm] = [initial]
    act: dict[str, tuple[list, list, list]] = {}
    pas: dict[str, tuple[list, list, list]] = {}
    cursor = 0
    while cursor < len(order):
        term = order[cursor]
        for action, group in semantics.grouped_transitions(term).items():
            for tr in group:
                j = index.get(tr.target)
                if j is None:
                    j = len(order)
                    if j >= max_states:
                        raise StateSpaceLimitError(
                            f"component {unparse(initial)!r} exceeds the "
                            f"configured limit of {max_states} local derivatives"
                        )
                    index[tr.target] = j
                    order.append(tr.target)
                if isinstance(tr.rate, ActiveRate):
                    rows, cols, vals = act.setdefault(action, ([], [], []))
                    vals.append(tr.rate.value)
                else:
                    rows, cols, vals = pas.setdefault(action, ([], [], []))
                    vals.append(tr.rate.weight)
                rows.append(cursor)
                cols.append(j)
        cursor += 1
    n = len(order)

    def to_csr(entries):
        out = {}
        for action, (rows, cols, vals) in entries.items():
            M = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
            M.sum_duplicates()
            out[action] = M
        return out

    labels = [
        (t.name if isinstance(t, Constant) else unparse(t),) for t in order
    ]
    return _KronPart(labels, to_csr(act), to_csr(pas))


def _hide_part(part: _KronPart, hidden: frozenset[str]) -> _KronPart:
    """Rename hidden actions to ``tau`` (merging with existing ``tau``)."""

    def rename(table: dict[str, sp.csr_matrix]) -> dict[str, sp.csr_matrix]:
        out: dict[str, sp.csr_matrix] = {}
        for action, M in table.items():
            name = TAU if action in hidden else action
            out[name] = (out[name] + M).tocsr() if name in out else M
        return out

    return _KronPart(part.labels, rename(part.active), rename(part.passive))


def _mixed_rate_check(action: str, wa: np.ndarray, va: np.ndarray) -> None:
    if ((wa > 0) & (va > 0)).any():
        raise CooperationError(
            f"apparent rate of shared action {action!r} is undefined: a "
            "component enables both active and passive activities of the "
            "same action type"
        )


def _combine_coop(
    left: _KronPart, right: _KronPart, shared: frozenset[str], max_states: int
) -> _KronPart:
    n1, n2 = left.n, right.n
    n = n1 * n2
    if n > max_states:
        raise StateSpaceLimitError(
            f"Kronecker product space has {n} states, exceeding the "
            f"configured limit of {max_states} states (the explicit engine "
            "only pays for reachable states — use derive())"
        )
    I1 = sp.identity(n1, format="csr")
    I2 = sp.identity(n2, format="csr")
    zero1 = sp.csr_matrix((n1, n1))
    zero2 = sp.csr_matrix((n2, n2))

    # Deterministic action order: left side's first-use order, then the
    # right side's actions not already seen.
    actions: list[str] = []
    for table in (left.active, left.passive, right.active, right.passive):
        for action in table:
            if action not in actions:
                actions.append(action)

    active: dict[str, sp.csr_matrix] = {}
    passive: dict[str, sp.csr_matrix] = {}
    for action in actions:
        W1 = left.active.get(action)
        V1 = left.passive.get(action)
        W2 = right.active.get(action)
        V2 = right.passive.get(action)
        if action not in shared:
            # Interleaving: either side proceeds independently.
            if W1 is not None or W2 is not None:
                active[action] = (
                    sp.kron(W1 if W1 is not None else zero1, I2, format="csr")
                    + sp.kron(I1, W2 if W2 is not None else zero2, format="csr")
                ).tocsr()
            if V1 is not None or V2 is not None:
                passive[action] = (
                    sp.kron(V1 if V1 is not None else zero1, I2, format="csr")
                    + sp.kron(I1, V2 if V2 is not None else zero2, format="csr")
                ).tocsr()
            continue
        if (W1 is None and V1 is None) or (W2 is None and V2 is None):
            # A shared action one side never performs is blocked forever.
            continue
        wa1 = _row_sums(W1) if W1 is not None else np.zeros(n1)
        va1 = _row_sums(V1) if V1 is not None else np.zeros(n1)
        wa2 = _row_sums(W2) if W2 is not None else np.zeros(n2)
        va2 = _row_sums(V2) if V2 is not None else np.zeros(n2)
        _mixed_rate_check(action, wa1, va1)
        _mixed_rate_check(action, wa2, va2)
        Pa1 = _normalized(W1, wa1) if W1 is not None else zero1
        Pp1 = _normalized(V1, va1) if V1 is not None else zero1
        Pa2 = _normalized(W2, wa2) if W2 is not None else zero2
        Pp2 = _normalized(V2, va2) if V2 is not None else zero2
        # Product-space apparent-rate vectors (leftmost slowest).
        RA1 = np.repeat(wa1, n2)
        PA1 = np.repeat(va1, n2)
        RA2 = np.tile(wa2, n1)
        PA2 = np.tile(va2, n1)
        terms = []
        mask_aa = (RA1 > 0) & (RA2 > 0)
        if mask_aa.any():
            # Both active: bounded capacity, min of the apparent rates.
            terms.append(
                sp.diags(np.where(mask_aa, np.minimum(RA1, RA2), 0.0))
                @ sp.kron(Pa1, Pa2, format="csr")
            )
        mask_ap = (RA1 > 0) & (PA2 > 0)
        if mask_ap.any():
            # Active left, passive right: the active side sets the pace.
            terms.append(
                sp.diags(np.where(mask_ap, RA1, 0.0))
                @ sp.kron(Pa1, Pp2, format="csr")
            )
        mask_pa = (PA1 > 0) & (RA2 > 0)
        if mask_pa.any():
            terms.append(
                sp.diags(np.where(mask_pa, RA2, 0.0))
                @ sp.kron(Pp1, Pa2, format="csr")
            )
        if terms:
            W = terms[0]
            for extra in terms[1:]:
                W = W + extra
            W = W.tocsr()
            W.eliminate_zeros()
            if W.nnz:
                active[action] = W
        mask_pp = (PA1 > 0) & (PA2 > 0)
        if mask_pp.any():
            # Both passive: still waiting; weights combine with min.
            V = (
                sp.diags(np.where(mask_pp, np.minimum(PA1, PA2), 0.0))
                @ sp.kron(Pp1, Pp2, format="csr")
            ).tocsr()
            V.eliminate_zeros()
            if V.nnz:
                passive[action] = V
    labels = [l1 + l2 for l1 in left.labels for l2 in right.labels]
    return _KronPart(labels, active, passive)


def _system_part(model: Model, max_states: int) -> _KronPart:
    semantics = SequentialSemantics(model)

    def build(term: ProcessTerm) -> _KronPart:
        if isinstance(term, Cooperation):
            return _combine_coop(
                build(term.left),
                build(term.right),
                frozenset(term.actions),
                max_states,
            )
        if isinstance(term, Hiding):
            return _hide_part(build(term.process), frozenset(term.actions))
        return _leaf_part(semantics, term, max_states)

    return build(expand_aggregations(model.system))


def _check_top_level_passive(part: _KronPart) -> None:
    for action, V in part.passive.items():
        if V.nnz:
            raise IllFormedModelError(
                f"action {action!r} is performed passively at the top level "
                "of the system equation; every passive activity must "
                "cooperate with an active partner"
            )


def _assemble_generator(part: _KronPart) -> sp.csr_matrix:
    n = part.n
    R = sp.csr_matrix((n, n))
    for W in part.active.values():
        R = R + W
    R = R.tocsr()
    # Self-loop rates appear in both R and the row sums, so they cancel
    # on the diagonal — exactly the explicit engine's aggregation.
    exit_rates = _row_sums(R)
    return (R - sp.diags(exit_rates, format="csr")).tocsr()


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def kronecker_generator(
    model: Model, max_states: int = 1_000_000
) -> sp.csr_matrix:
    """Global generator over the full Kronecker product space.

    Handles arbitrary cooperation sets (and hiding) via the generalized
    product algebra; pure interleaving reduces to the classical
    Kronecker sum.  States the explicit engine would never reach are
    included (with their outgoing rates; unreachable rows are simply
    never entered).

    Raises
    ------
    IllFormedModelError
        If some action is still passive at the top level.
    StateSpaceLimitError
        If the product space exceeds ``max_states``.
    """
    part = _system_part(model, max_states)
    _check_top_level_passive(part)
    return _assemble_generator(part)


def kronecker_states(
    model: Model, max_states: int = 1_000_000
) -> list[tuple[str, ...]]:
    """Labels of the Kronecker state ordering.

    State ``k`` of :func:`kronecker_generator` corresponds to the tuple
    of local-derivative labels returned at position ``k`` (row-major
    over the component derivative lists, leftmost component slowest).
    """
    return list(_system_part(model, max_states).labels)


def kronecker_markov_ir(model: Model, max_states: int = 1_000_000):
    """Lower a PEPA model to :class:`repro.ir.MarkovIR` compositionally.

    Assembles the product-space generator, then restricts it to the
    states reachable from the initial state (product index 0 — every
    component in its initial derivative).  Labels use the same
    ``(A, B, ...)`` format as ``StateSpace.state_label``, so the result
    can be aligned with explicit derivation by label; the *ordering*
    is the Kronecker mixed-radix order, not BFS discovery order.
    """
    from repro.ir import MarkovIR

    part = _system_part(model, max_states)
    _check_top_level_passive(part)
    Q = _assemble_generator(part)
    labels = tuple("(" + ", ".join(state) + ")" for state in part.labels)
    ir = MarkovIR(generator=Q, initial_index=0, labels=labels)
    restricted, _kept = ir.restricted_to_reachable()
    return restricted
