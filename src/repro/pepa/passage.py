"""Passage-time analysis for PEPA models.

The finishing-time CDFs of the paper's Figs. 3 and 4 are first-passage
distributions: the probability that the system has reached a set of
*target* states (machine finished all mapped applications) by time
``t``, starting from a source distribution.

This module resolves frontend-level target/source specs (predicates,
``(leaf, label)`` pairs, index lists) into state indices and delegates
the numerics to the ``passage`` capability of the backend registry —
``uniformization`` (production path) or ``expm`` (dense matrix
exponential; ablation D2, small models only).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.engine.metrics import get_registry
from repro.errors import NumericsError, reraise_ir_errors
from repro.ir import solve
from repro.numerics.quantile import cdf_quantile
from repro.numerics.transient import expected_hitting_time
from repro.pepa.ctmc import CTMC

__all__ = ["passage_time_cdf", "passage_time_mean", "passage_time_quantile", "PassageTimeResult"]

StatePredicate = Callable[[object, int], bool]


@dataclass(frozen=True)
class PassageTimeResult:
    """A sampled passage-time CDF.

    Attributes
    ----------
    times:
        The evaluation grid.
    cdf:
        ``cdf[i] = P(T <= times[i])``; monotone non-decreasing in [0, 1].
    mean:
        Exact mean first-passage time (from the linear hitting-time
        system, not from the sampled curve).
    meta:
        Execution metadata (``cache`` status, ``backend``, ``n_states``,
        ``method``).
    """

    times: np.ndarray
    cdf: np.ndarray
    mean: float
    meta: dict = field(default_factory=dict, compare=False)

    def quantile(self, q: float) -> float:
        """Earliest time the sampled CDF reaches level ``q`` (linear
        interpolation between bracketing grid points); see
        :func:`repro.numerics.cdf_quantile`."""
        return cdf_quantile(self.times, self.cdf, q)


def _resolve_states(chain: CTMC, spec) -> list[int]:
    """Resolve a target/source spec into state indices.

    Accepts an iterable of indices, a predicate ``f(space, i)``, or a
    ``(leaf, local_state_label)`` pair.
    """
    space = chain.space
    if callable(spec):
        return space.states_where(spec)
    if (
        isinstance(spec, tuple)
        and len(spec) == 2
        and isinstance(spec[0], (int, str))
        and isinstance(spec[1], str)
    ):
        return space.states_with_local(spec[0], spec[1])
    return [int(s) for s in spec]


def passage_time_cdf(
    chain: CTMC,
    target,
    times: Sequence[float],
    source: Sequence[int] | None = None,
    method: str = "uniformization",
    epsilon: float = 1e-12,
) -> PassageTimeResult:
    """CDF of the first-passage time from ``source`` into ``target``.

    Parameters
    ----------
    chain:
        The CTMC (may contain absorbing states — typical for
        finishing-time models).
    target:
        Target spec: state indices, a predicate ``f(space, i)``, or a
        ``(leaf, local_label)`` pair.
    times:
        Evaluation grid (non-negative).
    source:
        Source state indices; mass is split uniformly among them.
        Defaults to the initial state.
    method:
        ``"uniformization"`` (production path) or ``"expm"`` (dense
        matrix exponential; ablation D2, small models only).
    """
    space = chain.space
    n = chain.n_states
    targets = _resolve_states(chain, target)
    if not targets:
        raise NumericsError("passage-time target set is empty")
    pi0 = np.zeros(n)
    if source is None:
        pi0[space.initial_state] = 1.0
    else:
        src = list(source)
        if not src:
            raise NumericsError("passage-time source set is empty")
        pi0[src] = 1.0 / len(src)
    times_arr = np.asarray(times, dtype=np.float64)
    if method not in ("uniformization", "expm"):
        raise ValueError(f"unknown passage-time method {method!r}")
    with get_registry().timer("passage_time_cdf") as gauges:
        with reraise_ir_errors(NumericsError):
            sol = solve(
                chain.lower(),
                "passage",
                backend=method,
                targets=tuple(sorted(targets)),
                times=times_arr,
                pi0=pi0,
                epsilon=epsilon,
            )
        gauges["n_states"] = n
    result = PassageTimeResult(times=sol.times, cdf=sol.cdf, mean=sol.mean)
    result.meta.update(sol.meta)
    result.meta.update(n_states=n, method=method)
    return result


def passage_time_mean(chain: CTMC, target, source: Sequence[int] | None = None) -> float:
    """Mean first-passage time into ``target`` (see :func:`passage_time_cdf`
    for the target/source specs)."""
    n = chain.n_states
    targets = _resolve_states(chain, target)
    if not targets:
        raise NumericsError("passage-time target set is empty")
    pi0 = np.zeros(n)
    if source is None:
        pi0[chain.space.initial_state] = 1.0
    else:
        src = list(source)
        pi0[src] = 1.0 / len(src)
    return expected_hitting_time(chain.generator, pi0, targets)


def passage_time_quantile(
    chain: CTMC,
    target,
    q: float,
    horizon: float | None = None,
    grid_points: int = 400,
) -> float:
    """Convenience wrapper: evaluate the CDF on an automatic grid and read
    off the ``q`` quantile.  The horizon defaults to eight mean passage
    times, which covers q <= 0.999 for well-behaved models."""
    mean = passage_time_mean(chain, target)
    if horizon is None:
        horizon = 8.0 * mean if mean > 0 else 1.0
    times = np.linspace(0.0, horizon, grid_points)
    return passage_time_cdf(chain, target, times).quantile(q)
