"""Passage-time analysis for PEPA models.

The finishing-time CDFs of the paper's Figs. 3 and 4 are first-passage
distributions: the probability that the system has reached a set of
*target* states (machine finished all mapped applications) by time
``t``, starting from a source distribution.

Implementation: the target states are made absorbing and the modified
chain's transient solution is evaluated on the requested time grid via
uniformization (:func:`repro.numerics.absorption_cdf`).  Design ablation
D2 compares this against the dense matrix exponential and, for purely
sequential models, the closed-form hypoexponential.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.engine.cache import cached
from repro.engine.metrics import get_registry
from repro.errors import NumericsError
from repro.numerics.quantile import cdf_quantile
from repro.numerics.transient import absorption_cdf, expected_hitting_time
from repro.pepa.ctmc import CTMC

__all__ = ["passage_time_cdf", "passage_time_mean", "passage_time_quantile", "PassageTimeResult"]

StatePredicate = Callable[[object, int], bool]


@dataclass(frozen=True)
class PassageTimeResult:
    """A sampled passage-time CDF.

    Attributes
    ----------
    times:
        The evaluation grid.
    cdf:
        ``cdf[i] = P(T <= times[i])``; monotone non-decreasing in [0, 1].
    mean:
        Exact mean first-passage time (from the linear hitting-time
        system, not from the sampled curve).
    meta:
        Execution metadata (``cache`` status, ``n_states``, ``method``).
    """

    times: np.ndarray
    cdf: np.ndarray
    mean: float
    meta: dict = field(default_factory=dict, compare=False)

    def quantile(self, q: float) -> float:
        """Earliest time the sampled CDF reaches level ``q`` (linear
        interpolation between bracketing grid points); see
        :func:`repro.numerics.cdf_quantile`."""
        return cdf_quantile(self.times, self.cdf, q)


def _resolve_states(chain: CTMC, spec) -> list[int]:
    """Resolve a target/source spec into state indices.

    Accepts an iterable of indices, a predicate ``f(space, i)``, or a
    ``(leaf, local_state_label)`` pair.
    """
    space = chain.space
    if callable(spec):
        return space.states_where(spec)
    if (
        isinstance(spec, tuple)
        and len(spec) == 2
        and isinstance(spec[0], (int, str))
        and isinstance(spec[1], str)
    ):
        return space.states_with_local(spec[0], spec[1])
    return [int(s) for s in spec]


def passage_time_cdf(
    chain: CTMC,
    target,
    times: Sequence[float],
    source: Sequence[int] | None = None,
    method: str = "uniformization",
    epsilon: float = 1e-12,
) -> PassageTimeResult:
    """CDF of the first-passage time from ``source`` into ``target``.

    Parameters
    ----------
    chain:
        The CTMC (may contain absorbing states — typical for
        finishing-time models).
    target:
        Target spec: state indices, a predicate ``f(space, i)``, or a
        ``(leaf, local_label)`` pair.
    times:
        Evaluation grid (non-negative).
    source:
        Source state indices; mass is split uniformly among them.
        Defaults to the initial state.
    method:
        ``"uniformization"`` (production path) or ``"expm"`` (dense
        matrix exponential; ablation D2, small models only).
    """
    space = chain.space
    n = chain.n_states
    targets = _resolve_states(chain, target)
    if not targets:
        raise NumericsError("passage-time target set is empty")
    pi0 = np.zeros(n)
    if source is None:
        pi0[space.initial_state] = 1.0
    else:
        src = list(source)
        if not src:
            raise NumericsError("passage-time source set is empty")
        pi0[src] = 1.0 / len(src)
    times_arr = np.asarray(times, dtype=np.float64)
    if method not in ("uniformization", "expm"):
        raise ValueError(f"unknown passage-time method {method!r}")
    with get_registry().timer("passage_time_cdf") as gauges:
        result, status = cached(
            "passage_cdf",
            (chain.generator, tuple(sorted(targets)), times_arr, pi0, method, epsilon),
            lambda: _compute_cdf(chain, pi0, targets, times_arr, method, epsilon),
        )
        gauges["n_states"] = n
    result.meta.update(cache=status, n_states=n, method=method)
    return result


def _compute_cdf(
    chain: CTMC,
    pi0: np.ndarray,
    targets: list[int],
    times_arr: np.ndarray,
    method: str,
    epsilon: float,
) -> PassageTimeResult:
    if method == "uniformization":
        cdf = absorption_cdf(chain.generator, pi0, targets, times_arr, epsilon)
    else:  # expm (ablation D2)
        if chain.n_states > 2000:
            raise NumericsError("dense expm passage-time is limited to 2000 states")
        Q = chain.generator.toarray()
        Q[targets, :] = 0.0
        cdf = np.empty(times_arr.size)
        for i, t in enumerate(times_arr):
            dist = pi0 @ scipy.linalg.expm(Q * t)
            cdf[i] = dist[targets].sum()
    cdf = np.clip(cdf, 0.0, 1.0)
    # Enforce monotonicity against truncation-level round-off.
    cdf = np.maximum.accumulate(cdf)
    mean = expected_hitting_time(chain.generator, pi0, targets)
    return PassageTimeResult(times=times_arr, cdf=cdf, mean=mean)


def passage_time_mean(chain: CTMC, target, source: Sequence[int] | None = None) -> float:
    """Mean first-passage time into ``target`` (see :func:`passage_time_cdf`
    for the target/source specs)."""
    n = chain.n_states
    targets = _resolve_states(chain, target)
    if not targets:
        raise NumericsError("passage-time target set is empty")
    pi0 = np.zeros(n)
    if source is None:
        pi0[chain.space.initial_state] = 1.0
    else:
        src = list(source)
        pi0[src] = 1.0 / len(src)
    return expected_hitting_time(chain.generator, pi0, targets)


def passage_time_quantile(
    chain: CTMC,
    target,
    q: float,
    horizon: float | None = None,
    grid_points: int = 400,
) -> float:
    """Convenience wrapper: evaluate the CDF on an automatic grid and read
    off the ``q`` quantile.  The horizon defaults to eight mean passage
    times, which covers q <= 0.999 for well-behaved models."""
    mean = passage_time_mean(chain, target)
    if horizon is None:
        horizon = 8.0 * mean if mean > 0 else 1.0
    times = np.linspace(0.0, horizon, grid_points)
    return passage_time_cdf(chain, target, times).quantile(q)
