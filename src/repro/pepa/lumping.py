"""Ordinary lumping of PEPA CTMCs.

PEPA's answer to state-space explosion (before GPEPA's fluid limit) is
aggregation: states equivalent under *ordinary lumpability* can be
merged without changing any measure defined on the lumped partition.
This module computes the coarsest ordinarily-lumpable partition that
refines a user-supplied initial partition (default: one block, i.e.
maximal aggregation) by signature-based partition refinement:

    repeat
        signature(s) = { (block(s'), total rate s -> block(s')) }
        split every block by signature
    until no block splits

and builds the lumped generator.  The initial partition is how callers
protect their reward structure — states with different reward values
must start in different blocks.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import PepaError
from repro.pepa.ctmc import CTMC

__all__ = [
    "lump",
    "LumpedCTMC",
    "symmetry_labels",
    "verify_population_agreement",
]


@dataclass(frozen=True)
class LumpedCTMC:
    """An aggregated chain.

    Attributes
    ----------
    generator:
        Lumped generator (one row/column per block).
    blocks:
        ``blocks[b]`` is the sorted tuple of original state indices.
    block_of:
        ``block_of[i]`` is the block index of original state ``i``.
    """

    generator: sp.csr_matrix
    blocks: tuple[tuple[int, ...], ...]
    block_of: np.ndarray

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def lift(self, pi_lumped: np.ndarray) -> np.ndarray:
        """Spread a lumped distribution uniformly within each block.

        Exact for the stationary distribution when the chain is also
        *exactly* lumpable; for plain ordinary lumping, per-block sums
        (``project``-ed measures) are the meaningful quantities.
        """
        pi = np.zeros(self.block_of.size)
        for b, states in enumerate(self.blocks):
            pi[list(states)] = pi_lumped[b] / len(states)
        return pi

    def project(self, pi_full: np.ndarray) -> np.ndarray:
        """Aggregate a full-chain distribution onto the blocks."""
        out = np.zeros(self.n_blocks)
        np.add.at(out, self.block_of, pi_full)
        return out


def symmetry_labels(chain: CTMC) -> list[tuple]:
    """Default initial partition: the multiset of (component family,
    local derivative) pairs of each state.

    Replicated components (``PC[4]``) get family name ``PC`` for every
    copy, so states differing only by a permutation of identical copies
    share a label — the classic PEPA symmetry (canonical-state)
    aggregation.  Any population-count measure is preserved.
    """
    space = chain.space
    families = [leaf.name.split("#", 1)[0] for leaf in space.leaves]
    labels = []
    for i in range(space.size):
        state = space.states[i]
        key = tuple(
            sorted(
                (families[k], space.local_label(k, state[k]))
                for k in range(len(families))
            )
        )
        labels.append(key)
    return labels


def _initial_blocks(
    n: int,
    initial: Sequence[Hashable] | Callable[[int], Hashable] | None,
) -> list[list[int]]:
    if initial is None:
        raise PepaError("internal: default partition resolved by lump()")
    if callable(initial):
        keys = [initial(i) for i in range(n)]
    else:
        keys = list(initial)
        if len(keys) != n:
            raise PepaError(
                f"initial partition labels cover {len(keys)} states, chain has {n}"
            )
    by_key: dict[Hashable, list[int]] = {}
    for i, key in enumerate(keys):
        by_key.setdefault(key, []).append(i)
    # Blocks in order of first occurrence: deterministic, keeps the
    # initial state in block 0, and makes the identity partition yield
    # the identity permutation (sorting keys by repr would order block
    # 10 before block 2).
    return list(by_key.values())


def lump(
    chain: CTMC,
    initial: Sequence[Hashable] | Callable[[int], Hashable] | None = None,
    max_iterations: int = 10_000,
) -> LumpedCTMC:
    """Compute the coarsest ordinary lumping of ``chain``.

    Parameters
    ----------
    chain:
        The CTMC to aggregate.
    initial:
        Optional initial partition: per-state labels (sequence or
        callable).  States carrying different labels are never merged —
        use this to preserve reward distinctions (e.g. label states by
        the local derivative a utilization measure depends on).  The
        default is :func:`symmetry_labels` — the PEPA canonical-state
        aggregation merging permutations of identical replicas, which
        preserves every population-count measure.  (The one-block
        partition is always vacuously lumpable, so an *empty* default
        would silently destroy all structure.)

    Returns
    -------
    LumpedCTMC
        Blocks, membership map and the lumped generator.  Steady-state
        block probabilities of the lumped chain equal the block sums of
        the full chain's steady state (tested property).
    """
    n = chain.n_states
    if initial is None:
        initial = symmetry_labels(chain)
    R = chain.generator.tocsr()
    # Strip the diagonal once; signatures use off-diagonal flows only.
    coo = R.tocoo()
    off = coo.row != coo.col
    rows, cols, vals = coo.row[off], coo.col[off], coo.data[off]
    order = np.argsort(rows, kind="stable")
    rows, cols, vals = rows[order], cols[order], vals[order]
    starts = np.searchsorted(rows, np.arange(n + 1))
    # Quantization scale for refinement signatures.  An absolute
    # round(r, 12) is a no-op for 1e6-scale rates (ulp is already larger
    # than 1e-12, so float summation-order jitter splits equivalent
    # states) and collapses everything at 1e-13 scale (genuinely
    # different rates merge).  Quantizing r/scale keeps the tolerance
    # relative to the chain's rate magnitude.
    scale = float(np.abs(vals).max()) if vals.size else 1.0
    if not scale > 0.0:
        scale = 1.0

    blocks = _initial_blocks(n, initial)
    block_of = np.empty(n, dtype=np.intp)
    for b, members in enumerate(blocks):
        block_of[members] = b

    for _ in range(max_iterations):
        changed = False
        new_blocks: list[list[int]] = []
        for members in blocks:
            if len(members) == 1:
                new_blocks.append(members)
                continue
            sig_groups: dict[tuple, list[int]] = {}
            for s in members:
                lo, hi = starts[s], starts[s + 1]
                agg: dict[int, float] = {}
                for k in range(lo, hi):
                    tgt_block = int(block_of[cols[k]])
                    agg[tgt_block] = agg.get(tgt_block, 0.0) + vals[k]
                # Exclude flows back into the state's own block: ordinary
                # lumpability constrains flows to *other* blocks.
                own = int(block_of[s])
                sig = tuple(
                    sorted(
                        (b, round(r / scale, 12))
                        for b, r in agg.items()
                        if b != own
                    )
                )
                sig_groups.setdefault(sig, []).append(s)
            if len(sig_groups) == 1:
                new_blocks.append(members)
            else:
                changed = True
                for sig in sorted(sig_groups):
                    new_blocks.append(sig_groups[sig])
        blocks = new_blocks
        for b, members in enumerate(blocks):
            block_of[members] = b
        if not changed:
            break
    else:
        raise PepaError("partition refinement did not converge")

    # Lumped generator: the exact mean of the members' aggregate flows.
    # Under the tolerance-based refinement above, member rows may
    # disagree by up to the quantization tolerance; taking any single
    # representative would make the result depend on member ordering.
    nb = len(blocks)
    lrows: list[int] = []
    lcols: list[int] = []
    lvals: list[float] = []
    for b, members in enumerate(blocks):
        agg: dict[int, float] = {}
        for s in members:
            for k in range(starts[s], starts[s + 1]):
                tgt = int(block_of[cols[k]])
                if tgt != b:
                    agg[tgt] = agg.get(tgt, 0.0) + vals[k]
        inv = 1.0 / len(members)
        for tgt, rate in agg.items():
            lrows.append(b)
            lcols.append(tgt)
            lvals.append(rate * inv)
    L = sp.coo_matrix((lvals, (lrows, lcols)), shape=(nb, nb)).tocsr()
    exit_rates = np.asarray(L.sum(axis=1)).ravel()
    Q = (L - sp.diags(exit_rates, format="csr")).tocsr()
    return LumpedCTMC(
        generator=Q,
        blocks=tuple(tuple(sorted(m)) for m in blocks),
        block_of=block_of.copy(),
    )


def verify_population_agreement(
    model, max_states: int = 100_000, tol: float = 1e-9
) -> dict:
    """Agreement oracle: population-form derivation vs. explicit + lump.

    Derives ``model`` both ways — directly in population form
    (:func:`repro.pepa.population.derive_population`) and explicitly
    followed by :func:`lump` seeded with the orbit keys
    (:func:`repro.pepa.population.canonical_partition`) — and checks the
    two quotients are the *same chain*: identical block structure
    (block sizes equal the orbit sizes exactly) and generators that
    agree entry-wise within ``tol`` (relative to the rate scale) under
    the block-matching permutation.

    Raises :class:`~repro.errors.PepaError` on any disagreement;
    returns a report dictionary on success.  Only usable where the
    explicit space fits ``max_states`` — this is the test-suite oracle,
    not a production path.
    """
    from repro.pepa.ctmc import ctmc_of
    from repro.pepa.population import canonical_partition, derive_population
    from repro.pepa.statespace import derive

    space = derive(model, max_states=max_states)
    chain = ctmc_of(space)
    keys = canonical_partition(model, space)
    lumped = lump(chain, initial=keys)
    pop = derive_population(model, max_states=max_states)
    info = pop.orbit_info

    if lumped.n_blocks != pop.size:
        raise PepaError(
            f"population derivation found {pop.size} orbits, explicit "
            f"lumping found {lumped.n_blocks} blocks"
        )
    if info.full_states != space.size:
        raise PepaError(
            f"population metadata claims {info.full_states} explicit "
            f"states, derivation reached {space.size}"
        )
    index = {s: i for i, s in enumerate(pop.states)}
    perm = np.empty(lumped.n_blocks, dtype=np.intp)
    for b, members in enumerate(lumped.blocks):
        key = keys[members[0]]
        if key not in index:
            raise PepaError(
                f"lumped block {b} has no matching population state"
            )
        perm[b] = index[key]
        if len(members) != int(round(float(info.orbit_sizes[perm[b]]))):
            raise PepaError(
                f"block {b} holds {len(members)} states, orbit size is "
                f"{info.orbit_sizes[perm[b]]:.0f}"
            )
    if np.unique(perm).size != perm.size:
        raise PepaError("block-to-orbit matching is not a bijection")

    Q_pop = ctmc_of(pop).generator
    # Reorder the population generator into lumped-block order.
    Q_pop_b = Q_pop[perm][:, perm]
    diff = (lumped.generator - Q_pop_b).tocoo()
    scale = max(
        1.0, float(np.abs(Q_pop.data).max()) if Q_pop.nnz else 1.0
    )
    max_rel = float(np.abs(diff.data).max()) / scale if diff.nnz else 0.0
    if max_rel > tol:
        raise PepaError(
            f"lumped and population generators disagree by {max_rel:.3e} "
            f"(relative, tolerance {tol:.3e})"
        )
    return {
        "explicit_states": space.size,
        "population_states": pop.size,
        "aggregation_ratio": space.size / pop.size,
        "max_rel_diff": max_rel,
        "tolerance": tol,
    }
