"""Ordinary lumping of PEPA CTMCs.

PEPA's answer to state-space explosion (before GPEPA's fluid limit) is
aggregation: states equivalent under *ordinary lumpability* can be
merged without changing any measure defined on the lumped partition.
This module computes the coarsest ordinarily-lumpable partition that
refines a user-supplied initial partition (default: one block, i.e.
maximal aggregation) by signature-based partition refinement:

    repeat
        signature(s) = { (block(s'), total rate s -> block(s')) }
        split every block by signature
    until no block splits

and builds the lumped generator.  The initial partition is how callers
protect their reward structure — states with different reward values
must start in different blocks.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import PepaError
from repro.pepa.ctmc import CTMC

__all__ = ["lump", "LumpedCTMC", "symmetry_labels"]


@dataclass(frozen=True)
class LumpedCTMC:
    """An aggregated chain.

    Attributes
    ----------
    generator:
        Lumped generator (one row/column per block).
    blocks:
        ``blocks[b]`` is the sorted tuple of original state indices.
    block_of:
        ``block_of[i]`` is the block index of original state ``i``.
    """

    generator: sp.csr_matrix
    blocks: tuple[tuple[int, ...], ...]
    block_of: np.ndarray

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def lift(self, pi_lumped: np.ndarray) -> np.ndarray:
        """Spread a lumped distribution uniformly within each block.

        Exact for the stationary distribution when the chain is also
        *exactly* lumpable; for plain ordinary lumping, per-block sums
        (``project``-ed measures) are the meaningful quantities.
        """
        pi = np.zeros(self.block_of.size)
        for b, states in enumerate(self.blocks):
            pi[list(states)] = pi_lumped[b] / len(states)
        return pi

    def project(self, pi_full: np.ndarray) -> np.ndarray:
        """Aggregate a full-chain distribution onto the blocks."""
        out = np.zeros(self.n_blocks)
        np.add.at(out, self.block_of, pi_full)
        return out


def symmetry_labels(chain: CTMC) -> list[tuple]:
    """Default initial partition: the multiset of (component family,
    local derivative) pairs of each state.

    Replicated components (``PC[4]``) get family name ``PC`` for every
    copy, so states differing only by a permutation of identical copies
    share a label — the classic PEPA symmetry (canonical-state)
    aggregation.  Any population-count measure is preserved.
    """
    space = chain.space
    families = [leaf.name.split("#", 1)[0] for leaf in space.leaves]
    labels = []
    for i in range(space.size):
        state = space.states[i]
        key = tuple(
            sorted(
                (families[k], space.local_label(k, state[k]))
                for k in range(len(families))
            )
        )
        labels.append(key)
    return labels


def _initial_blocks(
    n: int,
    initial: Sequence[Hashable] | Callable[[int], Hashable] | None,
) -> list[list[int]]:
    if initial is None:
        raise PepaError("internal: default partition resolved by lump()")
    if callable(initial):
        keys = [initial(i) for i in range(n)]
    else:
        keys = list(initial)
        if len(keys) != n:
            raise PepaError(
                f"initial partition labels cover {len(keys)} states, chain has {n}"
            )
    by_key: dict[Hashable, list[int]] = {}
    for i, key in enumerate(keys):
        by_key.setdefault(key, []).append(i)
    # Blocks in order of first occurrence: deterministic, keeps the
    # initial state in block 0, and makes the identity partition yield
    # the identity permutation (sorting keys by repr would order block
    # 10 before block 2).
    return list(by_key.values())


def lump(
    chain: CTMC,
    initial: Sequence[Hashable] | Callable[[int], Hashable] | None = None,
    max_iterations: int = 10_000,
) -> LumpedCTMC:
    """Compute the coarsest ordinary lumping of ``chain``.

    Parameters
    ----------
    chain:
        The CTMC to aggregate.
    initial:
        Optional initial partition: per-state labels (sequence or
        callable).  States carrying different labels are never merged —
        use this to preserve reward distinctions (e.g. label states by
        the local derivative a utilization measure depends on).  The
        default is :func:`symmetry_labels` — the PEPA canonical-state
        aggregation merging permutations of identical replicas, which
        preserves every population-count measure.  (The one-block
        partition is always vacuously lumpable, so an *empty* default
        would silently destroy all structure.)

    Returns
    -------
    LumpedCTMC
        Blocks, membership map and the lumped generator.  Steady-state
        block probabilities of the lumped chain equal the block sums of
        the full chain's steady state (tested property).
    """
    n = chain.n_states
    if initial is None:
        initial = symmetry_labels(chain)
    R = chain.generator.tocsr()
    # Strip the diagonal once; signatures use off-diagonal flows only.
    coo = R.tocoo()
    off = coo.row != coo.col
    rows, cols, vals = coo.row[off], coo.col[off], coo.data[off]
    order = np.argsort(rows, kind="stable")
    rows, cols, vals = rows[order], cols[order], vals[order]
    starts = np.searchsorted(rows, np.arange(n + 1))

    blocks = _initial_blocks(n, initial)
    block_of = np.empty(n, dtype=np.intp)
    for b, members in enumerate(blocks):
        block_of[members] = b

    for _ in range(max_iterations):
        changed = False
        new_blocks: list[list[int]] = []
        for members in blocks:
            if len(members) == 1:
                new_blocks.append(members)
                continue
            sig_groups: dict[tuple, list[int]] = {}
            for s in members:
                lo, hi = starts[s], starts[s + 1]
                agg: dict[int, float] = {}
                for k in range(lo, hi):
                    tgt_block = int(block_of[cols[k]])
                    agg[tgt_block] = agg.get(tgt_block, 0.0) + vals[k]
                # Exclude flows back into the state's own block: ordinary
                # lumpability constrains flows to *other* blocks.
                own = int(block_of[s])
                sig = tuple(
                    sorted((b, round(r, 12)) for b, r in agg.items() if b != own)
                )
                sig_groups.setdefault(sig, []).append(s)
            if len(sig_groups) == 1:
                new_blocks.append(members)
            else:
                changed = True
                for sig in sorted(sig_groups):
                    new_blocks.append(sig_groups[sig])
        blocks = new_blocks
        for b, members in enumerate(blocks):
            block_of[members] = b
        if not changed:
            break
    else:
        raise PepaError("partition refinement did not converge")

    # Lumped generator: any representative state's aggregate flows.
    nb = len(blocks)
    lrows: list[int] = []
    lcols: list[int] = []
    lvals: list[float] = []
    for b, members in enumerate(blocks):
        rep = members[0]
        lo, hi = starts[rep], starts[rep + 1]
        agg: dict[int, float] = {}
        for k in range(lo, hi):
            tgt = int(block_of[cols[k]])
            if tgt != b:
                agg[tgt] = agg.get(tgt, 0.0) + vals[k]
        for tgt, rate in agg.items():
            lrows.append(b)
            lcols.append(tgt)
            lvals.append(rate)
    L = sp.coo_matrix((lvals, (lrows, lcols)), shape=(nb, nb)).tocsr()
    exit_rates = np.asarray(L.sum(axis=1)).ravel()
    Q = (L - sp.diags(exit_rates, format="csr")).tocsr()
    return LumpedCTMC(
        generator=Q,
        blocks=tuple(tuple(sorted(m)) for m in blocks),
        block_of=block_of.copy(),
    )
