"""CTMC construction from a derived PEPA state space.

Aggregates parallel transitions into a sparse generator matrix (CSR,
row convention) and lowers the labelled transition system to
:class:`repro.ir.MarkovIR`.  All numerical analyses — steady-state,
transient, per-action rate matrices — delegate to the backend registry
through :func:`repro.ir.solve`; this module holds no numerical code.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import DeadlockError
from repro.ir import MarkovIR, solve
from repro.numerics.steady import SteadyStateResult
from repro.pepa.statespace import StateSpace

__all__ = ["CTMC", "ctmc_of"]


@dataclass
class CTMC:
    """A continuous-time Markov chain derived from a PEPA model.

    Attributes
    ----------
    space:
        The originating state space (for labels and reward queries).
    generator:
        Sparse ``n x n`` generator ``Q`` (rows sum to zero).
    """

    space: StateSpace
    generator: sp.csr_matrix
    _ir: MarkovIR | None = field(default=None, repr=False, compare=False)

    @property
    def n_states(self) -> int:
        return self.generator.shape[0]

    def lower(self) -> MarkovIR:
        """Lower to the labelled-CTMC IR (memoized per chain).

        The transition table keeps self-loops — they matter for action
        throughput and for the jump chain of the stochastic simulator —
        while the generator already has them aggregated away.
        """
        if self._ir is None:
            space = self.space
            names = space.action_names
            self._ir = MarkovIR(
                generator=self.generator,
                initial_index=space.initial_state,
                labels=tuple(space.state_label(i) for i in range(space.size)),
                trans_source=space.trans_source,
                trans_target=space.trans_target,
                trans_rate=space.trans_rate,
                trans_action=tuple(names[c] for c in space.trans_action_code),
            )
        return self._ir

    def steady_state(self, method: str = "direct", **kwargs) -> SteadyStateResult:
        """Equilibrium distribution via the ``steady`` capability of the
        backend registry (``direct``/``dense``/``gmres``/``power``...).

        Raises
        ------
        DeadlockError
            If the chain has absorbing states (use passage-time analysis
            for those models instead).
        """
        deadlocks = self.space.deadlocked_states()
        if deadlocks:
            labels = ", ".join(self.space.state_label(s) for s in deadlocks[:3])
            raise DeadlockError(
                f"model has {len(deadlocks)} deadlocked state(s) (e.g. {labels}); "
                "the steady state is degenerate — use passage-time analysis"
            )
        return solve(self.lower(), "steady", backend=method, **kwargs)

    def transient(
        self,
        times: Sequence[float],
        pi0: Sequence[float] | None = None,
        epsilon: float = 1e-12,
    ) -> np.ndarray:
        """Transient distributions ``pi(t)`` for each requested time.

        ``pi0`` defaults to all mass on the initial state.
        """
        return solve(self.lower(), "transient", times=times, pi0=pi0, epsilon=epsilon)

    def action_rate_matrix(self, action: str) -> sp.csr_matrix:
        """Sparse matrix ``R_a`` with ``R_a[i, j]`` the total rate of
        ``action``-transitions from state ``i`` to ``j`` (cached)."""
        return self.lower().action_rate_matrix(action)

    def action_exit_rates(self, action: str) -> np.ndarray:
        """Vector of total ``action`` rates out of each state."""
        return np.asarray(self.action_rate_matrix(action).sum(axis=1)).ravel()


def ctmc_of(space: StateSpace) -> CTMC:
    """Aggregate the labelled transition system into a CTMC.

    Parallel transitions (same source/target, any action) sum their
    rates — the race-condition semantics of PEPA.  The aggregation is
    memoized on the state-space instance (the generator is a pure
    function of it) and timed in the ``ctmc_of`` metrics entry.
    """
    from repro.engine.metrics import get_registry

    memo = getattr(space, "_ctmc_memo", None)
    if memo is not None:
        get_registry().increment("ctmc_of.memo_hit")
        return memo
    with get_registry().timer("ctmc_of") as gauges:
        chain = _aggregate(space)
        gauges["n_states"] = chain.n_states
    space._ctmc_memo = chain
    return chain


def _aggregate(space: StateSpace) -> CTMC:
    from repro.engine.metrics import get_registry

    n = space.size
    rows = space.trans_source
    cols = space.trans_target
    vals = space.trans_rate
    # Self-loops do not change the distribution of a CTMC: drop them so
    # the generator's diagonal reflects the true exit rates.
    keep = rows != cols
    with get_registry().timer("derive.csr_assembly") as gauges:
        R = sp.coo_matrix(
            (vals[keep], (rows[keep], cols[keep])), shape=(n, n)
        ).tocsr()
        # COO->CSR already sums duplicate (row, col) entries — PEPA's
        # race-condition semantics for parallel edges; sum_duplicates()
        # pins that contract and canonicalizes the index arrays.
        R.sum_duplicates()
        exit_rates = np.asarray(R.sum(axis=1)).ravel()
        Q = (R - sp.diags(exit_rates, format="csr")).tocsr()
        gauges["nnz"] = Q.nnz
    return CTMC(space=space, generator=Q)
