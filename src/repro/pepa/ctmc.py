"""CTMC construction from a derived PEPA state space.

Aggregates parallel transitions into a sparse generator matrix (CSR,
row convention) and exposes the numerical analyses on top of it:
steady-state, transient, and per-action rate matrices for throughput
rewards.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import DeadlockError
from repro.numerics.steady import SteadyStateResult, steady_state
from repro.numerics.transient import transient_distribution
from repro.pepa.statespace import StateSpace

__all__ = ["CTMC", "ctmc_of"]


@dataclass
class CTMC:
    """A continuous-time Markov chain derived from a PEPA model.

    Attributes
    ----------
    space:
        The originating state space (for labels and reward queries).
    generator:
        Sparse ``n x n`` generator ``Q`` (rows sum to zero).
    """

    space: StateSpace
    generator: sp.csr_matrix
    _action_rates: dict[str, sp.csr_matrix] = field(default_factory=dict, repr=False)

    @property
    def n_states(self) -> int:
        return self.generator.shape[0]

    def steady_state(self, method: str = "direct", **kwargs) -> SteadyStateResult:
        """Equilibrium distribution; see :func:`repro.numerics.steady_state`.

        Raises
        ------
        DeadlockError
            If the chain has absorbing states (use passage-time analysis
            for those models instead).
        """
        deadlocks = self.space.deadlocked_states()
        if deadlocks:
            labels = ", ".join(self.space.state_label(s) for s in deadlocks[:3])
            raise DeadlockError(
                f"model has {len(deadlocks)} deadlocked state(s) (e.g. {labels}); "
                "the steady state is degenerate — use passage-time analysis"
            )
        return steady_state(self.generator, method=method, **kwargs)

    def transient(
        self,
        times: Sequence[float],
        pi0: Sequence[float] | None = None,
        epsilon: float = 1e-12,
    ) -> np.ndarray:
        """Transient distributions ``pi(t)`` for each requested time.

        ``pi0`` defaults to all mass on the initial state.
        """
        if pi0 is None:
            pi0 = np.zeros(self.n_states)
            pi0[self.space.initial_state] = 1.0
        return transient_distribution(self.generator, pi0, times, epsilon)

    def action_rate_matrix(self, action: str) -> sp.csr_matrix:
        """Sparse matrix ``R_a`` with ``R_a[i, j]`` the total rate of
        ``action``-transitions from state ``i`` to ``j`` (cached)."""
        cached = self._action_rates.get(action)
        if cached is not None:
            return cached
        n = self.n_states
        rows, cols, vals = [], [], []
        for tr in self.space.transitions:
            if tr.action == action:
                rows.append(tr.source)
                cols.append(tr.target)
                vals.append(tr.rate)
        R = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        self._action_rates[action] = R
        return R

    def action_exit_rates(self, action: str) -> np.ndarray:
        """Vector of total ``action`` rates out of each state."""
        return np.asarray(self.action_rate_matrix(action).sum(axis=1)).ravel()


def ctmc_of(space: StateSpace) -> CTMC:
    """Aggregate the labelled transition system into a CTMC.

    Parallel transitions (same source/target, any action) sum their
    rates — the race-condition semantics of PEPA.  The aggregation is
    memoized on the state-space instance (the generator is a pure
    function of it) and timed in the ``ctmc_of`` metrics entry.
    """
    from repro.engine.metrics import get_registry

    memo = getattr(space, "_ctmc_memo", None)
    if memo is not None:
        get_registry().increment("ctmc_of.memo_hit")
        return memo
    with get_registry().timer("ctmc_of") as gauges:
        chain = _aggregate(space)
        gauges["n_states"] = chain.n_states
    space._ctmc_memo = chain
    return chain


def _aggregate(space: StateSpace) -> CTMC:
    n = space.size
    rows = np.fromiter((tr.source for tr in space.transitions), dtype=np.intp)
    cols = np.fromiter((tr.target for tr in space.transitions), dtype=np.intp)
    vals = np.fromiter((tr.rate for tr in space.transitions), dtype=np.float64)
    # Self-loops do not change the distribution of a CTMC: drop them so
    # the generator's diagonal reflects the true exit rates.
    keep = rows != cols
    R = sp.coo_matrix((vals[keep], (rows[keep], cols[keep])), shape=(n, n)).tocsr()
    exit_rates = np.asarray(R.sum(axis=1)).ravel()
    Q = R - sp.diags(exit_rates, format="csr")
    return CTMC(space=space, generator=Q.tocsr())
