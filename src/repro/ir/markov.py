"""``MarkovIR`` — the explicit labelled-CTMC intermediate representation.

Every frontend whose semantics is a finite continuous-time Markov chain
(PEPA's derivation graph, Bio-PEPA's population CTMC) lowers to this
form: a sparse generator in the row convention, an initial state, and —
when the frontend has them — state labels and a labelled transition
table for simulation and action-reward queries.

The IR is canonically hashable through the engine's content-addressed
cache (:func:`repro.engine.canonical_key`): two models that lower to the
same matrices share every cached solve, whatever frontend produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import IRError

__all__ = ["MarkovIR", "OrbitInfo"]


@dataclass(frozen=True)
class OrbitInfo:
    """Aggregation metadata of a lumped (population-form) CTMC.

    Attached by derive backends that quotient symmetric replicated
    components: each state of the lumped chain represents a whole orbit
    of states of the underlying explicit chain.  The trust layer's
    lumped-derive sentinel validates these invariants on every dispatch.

    Attributes
    ----------
    orbit_sizes:
        ``orbit_sizes[i]`` is the number of explicit states the lumped
        state ``i`` stands for (float64; exact below 2**53).
    full_states:
        Exact total number of reachable explicit states, i.e. the sum
        of the orbit sizes (computed in exact integer arithmetic).
    counts:
        ``counts[i, c]`` is the population count of column ``c``'s
        member configuration in lumped state ``i`` — the numerical
        vector form of the state.
    column_labels:
        Human-readable member-configuration label per column.
    column_group:
        Replica-cluster id per column; columns of one cluster partition
        that cluster's members.
    group_totals:
        ``group_totals[g]`` is the number of replicas in cluster ``g``;
        every row of ``counts`` sums to it over the cluster's columns
        (population conservation).
    """

    orbit_sizes: np.ndarray
    full_states: int
    counts: np.ndarray
    column_labels: tuple[str, ...]
    column_group: np.ndarray
    group_totals: np.ndarray

    @property
    def n_groups(self) -> int:
        return int(self.group_totals.size)

    def expected_populations(self, pi: np.ndarray) -> dict[str, float]:
        """Per member-configuration expected population under ``pi``.

        ``pi`` is a distribution over the *lumped* states (steady-state
        vector, or one row of a transient sweep); the result maps each
        column label to the expected number of replicas sitting in that
        configuration — the natural measure on a population-form chain.
        """
        pi = np.asarray(pi, dtype=np.float64)
        values = pi @ self.counts
        return {
            label: float(values[c])
            for c, label in enumerate(self.column_labels)
        }


@dataclass(frozen=True, eq=False)
class MarkovIR:
    """An explicit labelled CTMC.

    Attributes
    ----------
    generator:
        Sparse ``n x n`` generator ``Q`` (CSR, rows sum to zero,
        self-loops already removed).
    initial_index:
        Index of the initial state (transient/passage analyses start
        from the unit mass there unless given an explicit ``pi0``).
    labels:
        Optional human-readable state labels, ``labels[i]`` for state
        ``i``.  ``None`` when the frontend has no cheap labelling (e.g.
        large population CTMCs).
    trans_source / trans_target / trans_rate / trans_action:
        Optional labelled transition table (parallel arrays / tuple) in
        the frontend's derivation order, *including* self-loops.  Drives
        the SSA backend and per-action reward matrices; ``None`` when
        the frontend only exposes the aggregated generator.
    """

    generator: sp.csr_matrix
    initial_index: int = 0
    labels: tuple[str, ...] | None = None
    trans_source: np.ndarray | None = None
    trans_target: np.ndarray | None = None
    trans_rate: np.ndarray | None = None
    trans_action: tuple[str, ...] | None = None
    #: Lumped-chain aggregation metadata (population-form derive
    #: backends); ``None`` for explicit chains.  Excluded from the
    #: content hash — the lumped generator itself already identifies
    #: the chain.
    orbits: OrbitInfo | None = field(default=None, compare=False)
    _ssa_tables: list | None = field(
        default=None, repr=False, compare=False, hash=False
    )
    _action_rates: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self):
        n, m = self.generator.shape
        if n != m:
            raise IRError(f"MarkovIR generator must be square, got {n}x{m}")
        if not 0 <= self.initial_index < n:
            raise IRError(f"initial state {self.initial_index} out of range")
        if self.labels is not None and len(self.labels) != n:
            raise IRError(
                f"{len(self.labels)} labels for {n} states"
            )
        table = (self.trans_source, self.trans_target, self.trans_rate)
        if any(t is not None for t in table) and any(t is None for t in table):
            raise IRError("transition table must be given completely or not at all")

    @property
    def n_states(self) -> int:
        return self.generator.shape[0]

    @property
    def has_transitions(self) -> bool:
        return self.trans_source is not None

    def initial_distribution(self) -> np.ndarray:
        pi0 = np.zeros(self.n_states)
        pi0[self.initial_index] = 1.0
        return pi0

    def absorbing_states(self) -> np.ndarray:
        """Indices of states with zero exit rate."""
        return np.nonzero(-self.generator.diagonal() <= 0.0)[0]

    def generator_defect(self) -> dict:
        """Worst structural defects of the CSR generator.

        Returns ``{"row_sum": max |row sum|, "min_offdiag": most
        negative off-diagonal entry (0 if none), "scale": max |entry|
        (>= 1)}`` — the raw measurements behind the trust layer's
        generator sentinels.  Memoized: the generator is immutable, so
        one CSR sweep covers every solve on this IR.
        """
        memo = getattr(self, "_trust_generator_defect", None)
        if memo is not None:
            return memo
        Q = self.generator
        row_sums = np.asarray(Q.sum(axis=1)).ravel()
        scale = max(1.0, float(np.abs(Q.data).max()) if Q.nnz else 1.0)
        coo = Q.tocoo()
        off = coo.row != coo.col
        min_off = float(coo.data[off].min()) if off.any() else 0.0
        defect = {
            "row_sum": float(np.abs(row_sums).max()) if row_sums.size else 0.0,
            "min_offdiag": min(min_off, 0.0),
            "scale": scale,
        }
        object.__setattr__(self, "_trust_generator_defect", defect)
        return defect

    def action_rate_matrix(self, action: str) -> sp.csr_matrix:
        """Sparse matrix of total per-``action`` rates between states
        (self-loops included — rewards observe them; memoized)."""
        if not self.has_transitions:
            raise IRError("this MarkovIR carries no labelled transition table")
        memo = self._action_rates.get(action)
        if memo is not None:
            return memo
        keep = [k for k, a in enumerate(self.trans_action) if a == action]
        n = self.n_states
        R = sp.coo_matrix(
            (
                self.trans_rate[keep],
                (self.trans_source[keep], self.trans_target[keep]),
            ),
            shape=(n, n),
        ).tocsr()
        self._action_rates[action] = R
        return R

    def restricted_to_reachable(self) -> tuple["MarkovIR", np.ndarray]:
        """Restrict the chain to the states reachable from the initial one.

        Compositional constructions (the generalized-Kronecker ``derive``
        backend) build the *full* product space; this trims it to the
        component the chain can actually visit.  Reachability follows
        positive off-diagonal generator entries, so the kept set is
        closed — no transition leaves it — and row sums are preserved.

        Returns ``(sub_ir, kept)`` where ``kept`` holds the original
        indices of the retained states in ascending order.  When every
        state is reachable, ``self`` is returned unchanged.
        """
        Q = self.generator.tocsr()
        n = self.n_states
        indptr, indices, data = Q.indptr, Q.indices, Q.data
        seen = np.zeros(n, dtype=bool)
        seen[self.initial_index] = True
        stack = [self.initial_index]
        while stack:
            i = stack.pop()
            for k in range(indptr[i], indptr[i + 1]):
                j = indices[k]
                if j != i and data[k] > 0.0 and not seen[j]:
                    seen[j] = True
                    stack.append(int(j))
        if bool(seen.all()):
            return self, np.arange(n, dtype=np.intp)
        kept = np.flatnonzero(seen)
        remap = np.full(n, -1, dtype=np.intp)
        remap[kept] = np.arange(kept.size, dtype=np.intp)
        table: dict = {}
        if self.has_transitions:
            keep = seen[self.trans_source] & seen[self.trans_target]
            table = {
                "trans_source": remap[self.trans_source[keep]],
                "trans_target": remap[self.trans_target[keep]],
                "trans_rate": self.trans_rate[keep],
                "trans_action": (
                    tuple(a for a, k in zip(self.trans_action, keep) if k)
                    if self.trans_action is not None
                    else None
                ),
            }
        sub = MarkovIR(
            generator=Q[kept][:, kept].tocsr(),
            initial_index=int(remap[self.initial_index]),
            labels=(
                tuple(self.labels[i] for i in kept)
                if self.labels is not None
                else None
            ),
            **table,
        )
        return sub, kept

    def ssa_tables(self) -> list[tuple[np.ndarray, np.ndarray, tuple[str, ...]]]:
        """Per-state jump tables ``(cum_rates, targets, actions)``.

        Self-loops are excluded (they do not change the state), and the
        per-state order is the transition-table order restricted to each
        source — exactly the frontend's derivation order, which keeps
        seeded paths bit-identical to the pre-IR simulators.  Memoized
        on the instance (the table is a pure function of the IR).
        """
        if self._ssa_tables is not None:
            return self._ssa_tables
        if not self.has_transitions:
            raise IRError("this MarkovIR carries no labelled transition table")
        per_state: list[list[int]] = [[] for _ in range(self.n_states)]
        for k in range(self.trans_source.size):
            s, t = int(self.trans_source[k]), int(self.trans_target[k])
            if s != t:
                per_state[s].append(k)
        tables = []
        actions = self.trans_action or ("",) * self.trans_source.size
        for ks in per_state:
            cum = np.cumsum(self.trans_rate[ks]) if ks else np.empty(0)
            targets = self.trans_target[ks].astype(np.intp)
            tables.append((cum, targets, tuple(actions[k] for k in ks)))
        object.__setattr__(self, "_ssa_tables", tables)
        return tables
