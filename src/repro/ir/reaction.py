"""``ReactionIR`` — the species/reaction-vector intermediate representation.

The common numerical form of Bio-PEPA kinetics and GPEPA fluid
semantics (Ding & Hillston's "numerical representation" of a stochastic
process algebra): a species vector ``x``, a stoichiometry matrix ``N``
and a propensity function ``v`` such that

* the deterministic semantics is ``dx/dt = N @ v(x)`` (or a custom
  ``rhs`` when the frontend's flow computation is not a plain
  matrix-vector product — GPEPA's normalized-min sharing), and
* the stochastic semantics is the jump process firing reaction ``r``
  at rate ``v(x)[r]`` with state change ``N[:, r]``.

``propensities``/``rhs`` are *picklable callables* (bound methods or
small classes, never closures) so the engine can fan ensemble
realizations out over a process pool.  They are excluded from the
content hash; the ``token`` field carries the canonically hashable
identity of the dynamics instead (the frontend model itself, or a
structural digest of it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import IRError

__all__ = ["ReactionIR"]

#: RNG-consumption disciplines of the direct-method SSA, preserved per
#: frontend so seeded trajectories stay bit-identical to the pre-IR
#: simulators (see :mod:`repro.ir.backends.ssa`).
_SAMPLERS = ("choice", "scan")


@dataclass(frozen=True, eq=False)
class ReactionIR:
    """A reaction network in vector form.

    Attributes
    ----------
    species:
        Coordinate labels of the state vector (species names, or
        ``"group.derivative"`` for grouped models).
    initial:
        Initial amounts/counts, ``float64``.
    stoichiometry:
        ``(n_species, n_reactions)`` state-change matrix ``N``.
    reaction_names:
        One label per reaction (kinetic-law names, or action-derived
        labels for grouped models).
    propensities:
        Picklable callable ``v(x) -> ndarray`` of per-reaction rates at
        amounts ``x`` (non-negative for valid states).
    rhs:
        Optional picklable callable ``f(t, x) -> dx`` overriding the
        default deterministic right-hand side ``N @ v(clip(x, 0))``.
    batch_propensities:
        Optional picklable callable ``V(X) -> (B, n_reactions)`` that
        evaluates the propensity vector for a whole batch of states
        ``X`` of shape ``(B, n_species)`` at once, *bit-identically* to
        ``propensities`` row by row.  The batched SSA kernel uses it to
        amortize the per-event law evaluation across an ensemble;
        ``None`` means the kernel evaluates row-wise through
        ``propensities``.  Frontends only attach an evaluator when every
        kinetic form is elementwise-exact under NumPy (the batched
        kernel additionally self-checks the first evaluation against the
        scalar law and falls back on any disagreement).
    sampler:
        Reaction-selection discipline of the direct SSA: ``"choice"``
        (``rng.choice`` on normalized propensities — Bio-PEPA) or
        ``"scan"`` (linear scan of ``rng.random() * total`` — GPEPA).
    integer_state:
        Whether the stochastic semantics requires integer initial
        amounts (both current frontends do).
    token:
        Canonically hashable identity of the dynamics for the engine
        cache (compared instead of the callables).
    """

    species: tuple[str, ...]
    initial: np.ndarray
    stoichiometry: np.ndarray
    reaction_names: tuple[str, ...]
    propensities: Callable = field(compare=False)
    rhs: Callable | None = field(default=None, compare=False)
    batch_propensities: Callable | None = field(default=None, compare=False)
    sampler: str = "choice"
    integer_state: bool = True
    token: object = None

    def __post_init__(self):
        n_species, n_reactions = self.stoichiometry.shape
        if len(self.species) != n_species:
            raise IRError(
                f"{len(self.species)} species but stoichiometry has "
                f"{n_species} rows"
            )
        if len(self.reaction_names) != n_reactions:
            raise IRError(
                f"{len(self.reaction_names)} reaction names but stoichiometry "
                f"has {n_reactions} columns"
            )
        if self.initial.shape != (n_species,):
            raise IRError(
                f"initial state has shape {self.initial.shape}, expected "
                f"({n_species},)"
            )
        if self.sampler not in _SAMPLERS:
            raise IRError(
                f"unknown sampler {self.sampler!r}; expected one of {_SAMPLERS}"
            )

    @property
    def n_species(self) -> int:
        return self.stoichiometry.shape[0]

    @property
    def n_reactions(self) -> int:
        return self.stoichiometry.shape[1]

    def species_index(self, name: str) -> int:
        try:
            return self.species.index(name)
        except ValueError:
            raise KeyError(
                f"no species {name!r}; have {list(self.species)}"
            ) from None

    def conservation_laws(self) -> np.ndarray:
        """Orthonormal basis of the left null space of the stoichiometry.

        Rows ``w`` satisfy ``w @ N = 0``; every trajectory of the
        network — SSA sample paths, ensemble means, the fluid ODE — must
        hold each ``w @ x(t)`` constant, which is the invariant the
        trust layer's conservation sentinel measures.  Memoized per
        instance (the stoichiometry is immutable); networks beyond
        512 species skip the SVD and report no laws.
        """
        memo = getattr(self, "_trust_conservation", None)
        if memo is not None:
            return memo
        if self.n_species > 512:
            W = np.empty((0, self.n_species))
        else:
            from repro.numerics.diagnostics import conservation_laws

            W = conservation_laws(self.stoichiometry)
        object.__setattr__(self, "_trust_conservation", W)
        return W

    def integer_initial(self) -> np.ndarray:
        """Initial amounts rounded to the integer lattice.

        Raises :class:`~repro.errors.IRError` when the initial state is
        not integral and the IR demands it.
        """
        x0 = np.asarray(self.initial, dtype=np.float64)
        if self.integer_state and not np.allclose(x0, np.round(x0)):
            raise IRError(
                "stochastic simulation requires integer initial amounts; use "
                "the ODE semantics for continuous concentrations"
            )
        return np.round(x0).astype(np.float64)
