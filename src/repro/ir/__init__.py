"""Shared intermediate representations and the solver-backend registry.

The paper's three tools (PEPA Eclipse plug-in, Bio-PEPA workbench,
GPAnalyser) solve the same mathematical objects behind incompatible
frontends.  This package is the reproduction's answer to that
fragmentation: every frontend lowers to one of two IRs —

* :class:`MarkovIR` — an explicit labelled CTMC (sparse generator,
  state labels, transition table), produced by ``pepa`` derivation
  graphs and ``biopepa`` population CTMCs;
* :class:`ReactionIR` — a species/reaction vector form (stoichiometry
  plus propensity function), produced by ``biopepa`` kinetics and
  ``gpepa`` fluid semantics —

and every analysis routes through :func:`solve`, which dispatches to a
pluggable backend registry (``steady`` / ``transient`` / ``passage`` /
``ssa`` / ``ode``), wrapping each call in the engine's metrics and
content-addressed cache under one uniform key scheme.

Import layering (enforced by ``repro.devtools.check_import_layering``):
frontends import ``repro.ir``; ``repro.ir`` imports ``repro.numerics``
and ``repro.engine``; never the other way around.
"""

from repro.ir import backends  # noqa: F401  (populates the registry)
from repro.ir.markov import MarkovIR, OrbitInfo
from repro.ir.reaction import ReactionIR
from repro.ir.registry import (
    CAPABILITIES,
    RetryPolicy,
    available_backends,
    default_backend,
    fallback_chain,
    get_backend,
    register_backend,
    register_fallback_chain,
    solve,
)

__all__ = [
    "CAPABILITIES",
    "MarkovIR",
    "OrbitInfo",
    "ReactionIR",
    "RetryPolicy",
    "available_backends",
    "default_backend",
    "fallback_chain",
    "get_backend",
    "register_backend",
    "register_fallback_chain",
    "solve",
]
