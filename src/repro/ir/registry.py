"""Solver-backend registry: one dispatch point for every analysis.

Backends register under a ``(capability, name)`` pair; the five
capabilities are::

    steady      equilibrium distribution of a MarkovIR
    transient   distribution over a time grid of a MarkovIR
    passage     first-passage CDF/mean into a target set of a MarkovIR
    ssa         stochastic trajectories / ensembles (MarkovIR or ReactionIR)
    ode         deterministic trajectory of a ReactionIR

:func:`solve` resolves the backend (aliases included), checks that it
accepts the IR's type, and wraps the call in the engine's metrics timer
(``ir.<capability>``) and — for deterministic capabilities — the
content-addressed cache under the uniform namespace ``ir.<capability>``,
keyed on ``(IR, backend, parameters)``.  Capabilities that already cache
at a lower level (``steady`` delegates to
:func:`repro.numerics.steady_state`) or that must not cache (``ssa``
ensembles feed the engine's parallel fan-out and batch counters) opt
out per registration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.cache import cached
from repro.engine.metrics import get_registry
from repro.errors import BackendError

__all__ = [
    "CAPABILITIES",
    "register_backend",
    "get_backend",
    "available_backends",
    "default_backend",
    "solve",
]

CAPABILITIES = ("steady", "transient", "passage", "ssa", "ode")


@dataclass(frozen=True)
class _Backend:
    capability: str
    name: str
    func: Callable
    accepts: tuple[type, ...]
    cache: bool


_REGISTRY: dict[tuple[str, str], _Backend] = {}
_ALIASES: dict[tuple[str, str], str] = {}
_DEFAULTS: dict[str, str] = {}


def register_backend(
    capability: str,
    name: str,
    func: Callable,
    *,
    accepts: tuple[type, ...],
    aliases: tuple[str, ...] = (),
    cache: bool = True,
    default: bool = False,
) -> None:
    """Register ``func`` as backend ``name`` for ``capability``.

    ``func`` is called as ``func(ir, **params)``.  ``aliases`` map extra
    names onto this backend (e.g. the numerics method names kept for
    backward compatibility).  The first registration for a capability —
    or the one passing ``default=True`` — becomes its default.
    """
    if capability not in CAPABILITIES:
        raise BackendError(
            f"unknown capability {capability!r}; expected one of {CAPABILITIES}"
        )
    _REGISTRY[(capability, name)] = _Backend(capability, name, func, accepts, cache)
    for alias in aliases:
        _ALIASES[(capability, alias)] = name
    if default or capability not in _DEFAULTS:
        _DEFAULTS[capability] = name


def default_backend(capability: str) -> str:
    """Name of the default backend for ``capability``."""
    if capability not in _DEFAULTS:
        raise BackendError(f"no backend registered for capability {capability!r}")
    return _DEFAULTS[capability]


def available_backends(capability: str | None = None) -> dict[str, tuple[str, ...]]:
    """Mapping ``capability -> registered backend names`` (aliases omitted)."""
    caps = CAPABILITIES if capability is None else (capability,)
    return {
        cap: tuple(
            name for (c, name) in sorted(_REGISTRY) if c == cap
        )
        for cap in caps
    }


def get_backend(capability: str, name: str | None = None) -> _Backend:
    """Resolve a backend by capability and (possibly aliased) name."""
    if capability not in CAPABILITIES:
        raise BackendError(
            f"unknown capability {capability!r}; expected one of {CAPABILITIES}"
        )
    if name is None:
        name = default_backend(capability)
    name = _ALIASES.get((capability, name), name)
    backend = _REGISTRY.get((capability, name))
    if backend is None:
        have = available_backends(capability)[capability]
        raise BackendError(
            f"no {capability!r} backend named {name!r}; available: {list(have)}"
        )
    return backend


def solve(ir, capability: str, backend: str | None = None, **params):
    """Run ``capability`` on ``ir`` with the selected ``backend``.

    Deterministic capabilities are cached under ``ir.<capability>``
    keyed on ``(ir, backend, params)``; when the result carries a
    ``meta`` dict, its ``cache`` and ``backend`` entries record how this
    call was served.
    """
    be = get_backend(capability, backend)
    if not isinstance(ir, be.accepts):
        names = " or ".join(t.__name__ for t in be.accepts)
        raise BackendError(
            f"{capability}/{be.name} accepts {names}, got {type(ir).__name__}"
        )
    reg = get_registry()
    reg.increment(f"ir.{capability}.{be.name}")
    with reg.timer(f"ir.{capability}"):
        if be.cache and getattr(ir, "token", True) is not None:
            result, status = cached(
                f"ir.{capability}",
                (ir, be.name, params),
                lambda: be.func(ir, **params),
            )
        else:
            result, status = be.func(ir, **params), None
    meta = getattr(result, "meta", None)
    if isinstance(meta, dict):
        if status is not None:
            meta["cache"] = status
        meta["backend"] = be.name
    return result
