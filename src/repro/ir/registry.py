"""Solver-backend registry: one dispatch point for every analysis.

Backends register under a ``(capability, name)`` pair; the six
capabilities are::

    derive      frontend model -> MarkovIR (PEPA: explicit / naive /
                generalized-Kronecker derivation strategies)
    steady      equilibrium distribution of a MarkovIR
    transient   distribution over a time grid of a MarkovIR
    passage     first-passage CDF/mean into a target set of a MarkovIR
    ssa         stochastic trajectories / ensembles (MarkovIR or ReactionIR)
    ode         deterministic trajectory of a ReactionIR

``derive`` is the odd one out: its input is a *frontend model object*
(the frontend registers its own strategies and the ``accepts`` check
keeps types honest — the registry itself never imports a frontend) and
its output is a fresh ``MarkovIR``, which the sentinels then check for
generator well-formedness like any other Markov result.

:func:`solve` resolves the backend (aliases included), checks that it
accepts the IR's type, and wraps the call in the engine's metrics timer
(``ir.<capability>``) and — for deterministic capabilities — the
content-addressed cache under the uniform namespace ``ir.<capability>``,
keyed on ``(IR, backend, parameters)``.  Capabilities that already cache
at a lower level (``steady`` delegates to
:func:`repro.numerics.steady_state`) or that must not cache (``ssa``
ensembles feed the engine's parallel fan-out and batch counters) opt
out per registration.

Fallback chains
---------------
A capability may declare an ordered *fallback chain*
(:func:`register_fallback_chain`) — e.g. ``steady: gmres → sparse →
dense``.  When the requested backend fails with an error the chain's
:class:`RetryPolicy` deems recoverable (by default
:class:`~repro.errors.ConvergenceError` /
:class:`~repro.errors.SingularGeneratorError` /
:class:`~repro.errors.NumericalTrustError`), :func:`solve` walks the
remaining chain entries in order, records ``ir.fallback.*`` metrics and
the result's ``meta["fallback_from"]``, and re-raises the *first* error
only if every candidate fails.  ``solve(..., fallback=False)`` disables
the walk for callers that need the raw failure.

Numerical trust
---------------
Every backend result — fresh or cached — passes the sentinels of
:mod:`repro.ir.guards` before :func:`solve` returns it: probability
vectors on the simplex, generator rows summing to ~0, monotone CDFs,
finite non-negative trajectories, conserved stoichiometric sums.  A
violation raises :class:`~repro.errors.NumericalTrustError`, which is
recoverable — a silently-garbage ``gmres`` answer degrades through the
same chain as a raised exception.  Verified solves carry a diagnostics
dictionary (``meta["diagnostics"]`` / :func:`repro.ir.guards.last_diagnostics`),
and ``$REPRO_SHADOW_RATE`` or ``solve(..., shadow=...)`` re-solves a
sampled fraction on an independent backend, quarantining disagreements
as ``ir.trust.shadow_mismatch``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.engine import run_manifest
from repro.engine.cache import Uncacheable, cached, canonical_key
from repro.engine.metrics import get_registry
from repro.errors import (
    BackendError,
    ConvergenceError,
    NumericalTrustError,
    SingularGeneratorError,
)
from repro.ir import guards

__all__ = [
    "CAPABILITIES",
    "RetryPolicy",
    "register_backend",
    "register_fallback_chain",
    "fallback_chain",
    "get_backend",
    "available_backends",
    "default_backend",
    "solve",
]

CAPABILITIES = ("derive", "steady", "transient", "passage", "ssa", "ode")


@dataclass(frozen=True)
class _Backend:
    capability: str
    name: str
    func: Callable
    accepts: tuple[type, ...]
    cache: bool


@dataclass(frozen=True)
class RetryPolicy:
    """Which failures a fallback chain may recover from.

    ``attempts`` is how many times each chain candidate is tried before
    moving on (1 = no same-backend retry — the solvers are deterministic,
    so retrying the identical call only helps for injected faults and
    other transient failures).
    """

    attempts: int = 1
    recoverable: tuple[type[BaseException], ...] = field(
        default=(ConvergenceError, SingularGeneratorError, NumericalTrustError)
    )

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")


_REGISTRY: dict[tuple[str, str], _Backend] = {}
_ALIASES: dict[tuple[str, str], str] = {}
_DEFAULTS: dict[str, str] = {}
_FALLBACK_CHAINS: dict[str, tuple[str, ...]] = {}
_FALLBACK_POLICIES: dict[str, RetryPolicy] = {}


def register_backend(
    capability: str,
    name: str,
    func: Callable,
    *,
    accepts: tuple[type, ...],
    aliases: tuple[str, ...] = (),
    cache: bool = True,
    default: bool = False,
) -> None:
    """Register ``func`` as backend ``name`` for ``capability``.

    ``func`` is called as ``func(ir, **params)``.  ``aliases`` map extra
    names onto this backend (e.g. the numerics method names kept for
    backward compatibility).  The first registration for a capability —
    or the one passing ``default=True`` — becomes its default.
    """
    if capability not in CAPABILITIES:
        raise BackendError(
            f"unknown capability {capability!r}; expected one of {CAPABILITIES}"
        )
    _REGISTRY[(capability, name)] = _Backend(capability, name, func, accepts, cache)
    for alias in aliases:
        _ALIASES[(capability, alias)] = name
    if default or capability not in _DEFAULTS:
        _DEFAULTS[capability] = name


def register_fallback_chain(
    capability: str,
    chain: tuple[str, ...],
    policy: RetryPolicy | None = None,
) -> None:
    """Declare the ordered backend fallback chain for ``capability``.

    When a :func:`solve` call on this capability fails recoverably, the
    chain entries *after* the requested backend's position (all entries,
    if the requested backend is not in the chain) are tried in order.
    """
    if capability not in CAPABILITIES:
        raise BackendError(
            f"unknown capability {capability!r}; expected one of {CAPABILITIES}"
        )
    _FALLBACK_CHAINS[capability] = tuple(chain)
    _FALLBACK_POLICIES[capability] = policy or RetryPolicy()


def fallback_chain(capability: str) -> tuple[str, ...]:
    """The registered fallback chain for ``capability`` (may be empty)."""
    return _FALLBACK_CHAINS.get(capability, ())


def default_backend(capability: str) -> str:
    """Name of the default backend for ``capability``."""
    if capability not in _DEFAULTS:
        raise BackendError(f"no backend registered for capability {capability!r}")
    return _DEFAULTS[capability]


def available_backends(capability: str | None = None) -> dict[str, tuple[str, ...]]:
    """Mapping ``capability -> registered backend names`` (aliases omitted)."""
    caps = CAPABILITIES if capability is None else (capability,)
    return {
        cap: tuple(
            name for (c, name) in sorted(_REGISTRY) if c == cap
        )
        for cap in caps
    }


def get_backend(capability: str, name: str | None = None) -> _Backend:
    """Resolve a backend by capability and (possibly aliased) name."""
    if capability not in CAPABILITIES:
        raise BackendError(
            f"unknown capability {capability!r}; expected one of {CAPABILITIES}"
        )
    if name is None:
        name = default_backend(capability)
    name = _ALIASES.get((capability, name), name)
    backend = _REGISTRY.get((capability, name))
    if backend is None:
        have = available_backends(capability)[capability]
        raise BackendError(
            f"no {capability!r} backend named {name!r}; available: {list(have)}"
        )
    return backend


def _execute(be: _Backend, ir, params: dict):
    """One backend attempt: metrics timer plus (opt-in) result cache."""
    reg = get_registry()
    reg.increment(f"ir.{be.capability}.{be.name}")
    guards.reset_notes()
    with reg.timer(f"ir.{be.capability}"):
        if be.cache and getattr(ir, "token", True) is not None:
            result, status = cached(
                f"ir.{be.capability}",
                (ir, be.name, params),
                lambda: be.func(ir, **params),
            )
        else:
            result, status = be.func(ir, **params), None
    meta = getattr(result, "meta", None)
    if isinstance(meta, dict):
        if status is not None:
            meta["cache"] = status
        meta["backend"] = be.name
    # Sentinels run on every result, cached ones included — a corrupt or
    # stale cache entry is exactly as untrustworthy as a bad solve.
    guards.verify(be.capability, be.name, ir, result, params)
    return result


def _ir_digest(ir) -> str | None:
    """Canonical content digest of the IR (the manifest's cache token).

    Memoized on the IR object — frozen dataclasses take the memo via
    ``object.__setattr__`` — because large generators hash their full
    CSR content.  An empty-string memo marks a known-uncacheable IR.
    """
    memo = getattr(ir, "_manifest_digest", None)
    if memo is not None:
        return memo or None
    try:
        digest = canonical_key("ir", ir)
    except Uncacheable:
        digest = ""
    try:
        object.__setattr__(ir, "_manifest_digest", digest)
    except (AttributeError, TypeError):
        pass
    return digest or None


def _attach_solve_manifest(
    capability: str,
    requested: _Backend,
    used: _Backend,
    chain: list[str],
    first_error: BaseException | None,
    ir,
    params: dict,
    result,
) -> None:
    """Assemble and attach the dispatch's reproducibility manifest.

    Best-effort by design: a result that cannot be canonically hashed
    still returns, just with a non-replayable manifest (or none at all
    when even the parameters resist encoding).
    """
    meta = getattr(result, "meta", None)
    manifest = run_manifest.build_solve_manifest(
        capability,
        params,
        result,
        requested=requested.name,
        used=used.name,
        chain=chain,
        fallback_error=(
            str(first_error) if used is not requested and first_error else None
        ),
        ir_digest=_ir_digest(ir),
        cache_status=meta.get("cache") if isinstance(meta, dict) else None,
    )
    run_manifest.attach_manifest(result, manifest)


def _candidates(capability: str, first: _Backend) -> list[_Backend]:
    """The requested backend plus the chain entries that follow it."""
    chain = [
        _ALIASES.get((capability, name), name)
        for name in _FALLBACK_CHAINS.get(capability, ())
    ]
    if first.name in chain:
        chain = chain[chain.index(first.name) + 1 :]
    names = [first.name] + [name for name in chain if name != first.name]
    out = []
    for name in names:
        be = _REGISTRY.get((capability, name))
        if be is not None:
            out.append(be)
    return out


def _maybe_shadow(capability: str, be: _Backend, ir, result, params: dict,
                  explicit: str | None) -> None:
    """Re-solve a sampled request on an independent backend and compare.

    ``explicit`` (the ``shadow=`` argument) forces a check against that
    backend; otherwise ``$REPRO_SHADOW_RATE`` selects a deterministic
    sample of requests and :func:`repro.ir.guards.shadow_backend` picks
    the partner.  Disagreement above tolerance raises
    :class:`~repro.errors.NumericalTrustError` — the result is
    quarantined, not returned.
    """
    rate = 1.0 if explicit is not None else guards.shadow_rate()
    if rate <= 0.0 or not guards.shadow_due(capability, rate):
        return
    reg = get_registry()
    partner = guards.shadow_backend(capability, be.name, ir, explicit=explicit)
    if partner is not None:
        partner = _ALIASES.get((capability, partner), partner)
    shadow_be = _REGISTRY.get((capability, partner)) if partner else None
    if shadow_be is None or not isinstance(ir, shadow_be.accepts):
        reg.increment("ir.trust.shadow.skipped")
        return
    primary_diag = guards.last_diagnostics()
    shadow_result = _execute(shadow_be, ir, params)
    info = guards.shadow_compare(
        capability, be.name, shadow_be.name, ir, result, shadow_result
    )
    if isinstance(primary_diag, dict):
        primary_diag.update(info)
        guards.set_last(primary_diag)


def solve(ir, capability: str, backend: str | None = None, fallback: bool = True,
          shadow: str | None = None, **params):
    """Run ``capability`` on ``ir`` with the selected ``backend``.

    Deterministic capabilities are cached under ``ir.<capability>``
    keyed on ``(ir, backend, params)``; when the result carries a
    ``meta`` dict, its ``cache`` and ``backend`` entries record how this
    call was served.

    When the capability declares a fallback chain and the selected
    backend fails recoverably — raising an exception *or* returning a
    result the trust sentinels reject — the remaining chain entries are
    tried in order (``fallback=False`` disables this); a fallback
    success records ``meta["fallback_from"]`` / ``meta["fallback_error"]``
    and bumps the ``ir.fallback.*`` counters.  If every candidate fails,
    the *first* error is re-raised.

    ``shadow`` names a backend to re-solve on and compare against
    (``repro solve --shadow``); without it, ``$REPRO_SHADOW_RATE``
    shadow-verifies a deterministic sample of requests.
    """
    be = get_backend(capability, backend)
    if not isinstance(ir, be.accepts):
        names = " or ".join(t.__name__ for t in be.accepts)
        raise BackendError(
            f"{capability}/{be.name} accepts {names}, got {type(ir).__name__}"
        )
    policy = _FALLBACK_POLICIES.get(capability, RetryPolicy())
    candidates = _candidates(capability, be) if fallback else [be]
    reg = get_registry()
    first_error: BaseException | None = None
    attempted: list[str] = []
    for candidate in candidates:
        if not isinstance(ir, candidate.accepts):
            continue
        attempted.append(candidate.name)
        error: BaseException | None = None
        for _attempt in range(policy.attempts):
            try:
                result = _execute(candidate, ir, params)
            except policy.recoverable as exc:
                error = exc
                continue
            if candidate is not be:
                reg.increment("ir.fallback.used")
                reg.increment(
                    f"ir.fallback.{capability}.{be.name}->{candidate.name}"
                )
                meta = getattr(result, "meta", None)
                if isinstance(meta, dict):
                    meta["fallback_from"] = be.name
                    meta["fallback_error"] = str(first_error)
            _maybe_shadow(capability, candidate, ir, result, params, shadow)
            _attach_solve_manifest(
                capability, be, candidate, attempted, first_error,
                ir, params, result,
            )
            return result
        if first_error is None:
            first_error = error
    if len(candidates) > 1:
        reg.increment("ir.fallback.exhausted")
    raise first_error
