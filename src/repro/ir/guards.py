"""Invariant sentinels and shadow verification for every registry solve.

A silently non-converged GMRES solve, a drifting integrator, or a torn
cache entry all return a plausible-looking array.  The paper's whole
claim — containerized runs are *trustworthy replicas* — therefore needs
the numerics themselves guarded, not just the execution layer.  This
module is that guard, applied by :func:`repro.ir.registry.solve` to the
result of **every** backend dispatch:

Sentinels (:func:`verify`)
    Structural invariants the mathematics demands of each capability:
    steady/transient vectors lie on the probability simplex, the
    generator's CSR rows sum to ~0, passage CDFs are monotone in
    ``[0, 1]``, ODE trajectories are finite with no negative species
    beyond tolerance, SSA trajectories conserve the network's invariant
    stoichiometric sums.  A violation raises
    :class:`~repro.errors.NumericalTrustError` carrying the invariant,
    backend and IR cache token — which the fallback chains treat as
    recoverable, so a sentinel failure on ``gmres`` degrades through
    ``sparse`` to ``dense`` exactly like a raised exception.

Diagnostics
    Each verified solve also yields a measurement dictionary (residual
    norms, iteration counts, 1-norm condition estimate, uniformization
    truncation mass, integrator statistics) attached to the result's
    ``meta["diagnostics"]`` when it has a ``meta`` dict, retrievable via
    :func:`last_diagnostics` otherwise, and surfaced by ``repro solve
    --diagnostics``.

Shadow verification
    The cheap production analogue of the paper's container-vs-native
    identical-output validation: ``$REPRO_SHADOW_RATE`` (or ``repro
    solve --shadow BACKEND``) re-solves a deterministic sample of
    requests on an independent backend — steady: dense vs. sparse, ode:
    rk4 vs. scipy — and quarantines disagreements above tolerance as
    ``ir.trust.shadow_mismatch``.

Layering: this module sits beside the registry (``ir``), importing only
``numerics``, ``engine`` and ``errors``; the registry imports it, never
the reverse.
"""

from __future__ import annotations

import math
import os
import threading
import warnings

import numpy as np

from repro.engine import faults
from repro.engine.metrics import get_registry
from repro.errors import NumericalTrustError
from repro.ir.markov import MarkovIR
from repro.ir.reaction import ReactionIR
from repro.numerics import diagnostics as diag

__all__ = [
    "SIMPLEX_ATOL",
    "RESIDUAL_RTOL",
    "ODE_NEGATIVE_ATOL",
    "DEFAULT_SHADOW_TOL",
    "verify",
    "note",
    "reset_notes",
    "last_diagnostics",
    "set_last",
    "shadow_rate",
    "shadow_due",
    "shadow_backend",
    "shadow_compare",
    "register_shadow_hook",
    "reset_shadow_state",
]

#: Probability-simplex slack: entries above ``-SIMPLEX_ATOL`` and total
#: mass within ``SIMPLEX_ATOL`` of 1.
SIMPLEX_ATOL = 1e-8

#: Steady residual acceptance: ``‖pi @ Q‖∞ <= RESIDUAL_RTOL * rate_scale``
#: (the same rate-scaled threshold the numerics layer applies).
RESIDUAL_RTOL = 1e-6

#: ODE trajectories may undershoot zero by round-off, never by more.
ODE_NEGATIVE_ATOL = 1e-6

#: Conservation drift allowances: exact integer moves for SSA paths,
#: Welford rounding for ensembles, integrator tolerance for ODEs.
_CONSERVE_RTOL = {"ssa_path": 1e-9, "ssa_ensemble": 1e-7, "ode": 1e-6}

#: Per-capability shadow disagreement tolerances (max-abs).  ``ode`` is
#: loose: the fixed-step RK4 partner is an independent integrator, not a
#: bit-identical one.
DEFAULT_SHADOW_TOL = {
    "steady": 1e-8,
    "transient": 1e-8,
    "passage": 1e-8,
    "derive": 1e-8,
    "ode": 1e-3,
}

_SHADOW_ENV = "REPRO_SHADOW_RATE"
_SHADOW_TOL_ENV = "REPRO_SHADOW_TOL"

#: Preferred shadow partners per capability, most-independent first.
_SHADOW_PARTNERS = {
    "steady": ("dense", "sparse", "gmres"),
    "transient": ("expm", "uniformization"),
    "passage": ("expm", "uniformization"),
    "ode": ("rk4", "scipy"),
}

#: Dense/expm partners refuse systems larger than this (mirrors
#: ``repro.ir.backends.markov.DENSE_STATE_LIMIT``).
_DENSE_PARTNER_LIMIT = 2000

#: Frontend-registered shadow strategies, ``capability -> (partner_fn,
#: compare_fn)``.  Layering keeps this module below the frontends, so
#: capabilities whose shadow pass needs frontend knowledge (``derive``:
#: comparing a lumped chain against the orbit projection of an explicit
#: one requires the PEPA symmetry analysis) register a hook instead of
#: being hard-coded here.  ``partner_fn(primary, ir) -> str | None``
#: picks the re-solve backend; ``compare_fn(ir, result, shadow_result)
#: -> float`` returns the max-abs style disagreement (``inf`` for a
#: structural mismatch).
_SHADOW_HOOKS: dict = {}


def register_shadow_hook(capability: str, partner_fn, compare_fn) -> None:
    """Register a frontend shadow strategy for ``capability``.

    Replaces any previous hook for the capability (latest frontend
    import wins — registration is idempotent per module).
    """
    _SHADOW_HOOKS[capability] = (partner_fn, compare_fn)

_notes = threading.local()

_shadow_lock = threading.Lock()
_shadow_counts: dict[str, int] = {}

_last = threading.local()


# ---------------------------------------------------------------------------
# Backend-deposited diagnostics (integrator statistics and the like)
# ---------------------------------------------------------------------------

def note(**values) -> None:
    """Deposit extra diagnostics from inside a backend call.

    Backends with measurements the result array cannot carry (the ODE
    integrator's evaluation counts, for instance) call this during the
    solve; :func:`verify` folds the notes into the diagnostics dict.
    """
    store = getattr(_notes, "data", None)
    if store is None:
        store = _notes.data = {}
    store.update(values)


def reset_notes() -> None:
    """Clear deposited notes (the registry calls this before each solve)."""
    _notes.data = {}


def _drain_notes() -> dict:
    store = getattr(_notes, "data", None)
    _notes.data = {}
    return store or {}


def last_diagnostics() -> dict | None:
    """Diagnostics of the most recent verified solve on this thread.

    Results that carry a ``meta`` dict also get the same dictionary as
    ``meta["diagnostics"]``; plain-array results (transient grids, ODE
    trajectories) are only reachable through this accessor.
    """
    return getattr(_last, "data", None)


def set_last(diagnostics: dict) -> None:
    """Restore/override the thread's last-diagnostics dictionary.

    The registry's shadow pass runs a second :func:`verify` (for the
    shadow backend's result), which displaces the primary's diagnostics;
    after comparing, it reinstates the primary's dict — now carrying the
    ``shadow_*`` fields — so callers always read the served result.
    """
    _last.data = diagnostics


# ---------------------------------------------------------------------------
# Sentinels
# ---------------------------------------------------------------------------

def _fail(
    invariant: str,
    message: str,
    *,
    capability: str,
    backend: str,
    ir,
    detail: float | None = None,
):
    reg = get_registry()
    reg.increment("ir.trust.sentinel_violation")
    reg.increment(f"ir.trust.violation.{invariant}")
    raise NumericalTrustError(
        invariant,
        message,
        capability=capability,
        backend=backend,
        token=getattr(ir, "token", None),
        detail=detail,
    )


def _check_generator(capability: str, backend: str, ir: MarkovIR) -> None:
    defect = ir.generator_defect()
    if defect["row_sum"] > SIMPLEX_ATOL * defect["scale"]:
        _fail(
            "generator_rows",
            f"generator rows sum to {defect['row_sum']:.3e}, not 0",
            capability=capability, backend=backend, ir=ir,
            detail=defect["row_sum"],
        )
    if defect["min_offdiag"] < -SIMPLEX_ATOL * defect["scale"]:
        _fail(
            "generator_rates",
            f"negative off-diagonal rate {defect['min_offdiag']:.3e}",
            capability=capability, backend=backend, ir=ir,
            detail=defect["min_offdiag"],
        )


def _check_orbits(capability, backend, ir, result) -> dict:
    """Lumped-derive sentinel: the aggregation metadata must describe a
    consistent quotient — orbit counts conserved, populations conserved
    per replica cluster, initial orbit trivial (replicas start alike)."""
    info = result.orbits
    n = result.n_states
    sizes = np.asarray(info.orbit_sizes, dtype=np.float64)
    if sizes.shape != (n,):
        _fail("orbit_shape",
              f"{sizes.shape[0] if sizes.ndim == 1 else sizes.shape} orbit "
              f"sizes for {n} lumped states",
              capability=capability, backend=backend, ir=ir)
    if not np.isfinite(sizes).all() or (sizes < 1.0 - 1e-6).any():
        _fail("orbit_sizes", "orbit sizes must be finite and >= 1",
              capability=capability, backend=backend, ir=ir)
    if float(np.abs(sizes - np.round(sizes)).max()) > 1e-6:
        _fail("orbit_sizes", "orbit sizes must be integral",
              capability=capability, backend=backend, ir=ir)
    total = float(sizes.sum())
    full = info.full_states
    if full < n:
        _fail("orbit_count",
              f"full chain claims {full} states for {n} orbits",
              capability=capability, backend=backend, ir=ir)
    # Orbit-count conservation: the exact total must equal the size sum.
    # Beyond 2**53 the float sum is no longer exact, so only the exactly
    # representable range is checked strictly.
    if full < 2**53 and abs(total - float(full)) > 0.5:
        _fail("orbit_count",
              f"orbit sizes sum to {total:.0f}, metadata claims {full}",
              capability=capability, backend=backend, ir=ir,
              detail=abs(total - float(full)))
    counts = np.asarray(info.counts, dtype=np.float64)
    if counts.shape[0] != n or (counts.size and counts.min() < 0):
        _fail("orbit_counts",
              "population count matrix malformed (wrong rows or negative)",
              capability=capability, backend=backend, ir=ir)
    # Population conservation per replica cluster — the invariant behind
    # every projected measure: each row distributes exactly the cluster's
    # replicas over its member configurations.
    group = np.asarray(info.column_group)
    worst = 0.0
    for g in range(info.n_groups):
        cols = np.flatnonzero(group == g)
        if not cols.size:
            continue
        drift = np.abs(
            counts[:, cols].sum(axis=1) - float(info.group_totals[g])
        )
        worst = max(worst, float(drift.max()) if drift.size else 0.0)
    if worst > 1e-9:
        _fail("population_conservation",
              f"cluster populations drift by {worst:.3e}",
              capability=capability, backend=backend, ir=ir, detail=worst)
    if sizes.size and abs(sizes[result.initial_index] - 1.0) > 1e-9:
        _fail("orbit_initial",
              f"initial orbit has size {sizes[result.initial_index]:.0f}, "
              "but replicas start identical",
              capability=capability, backend=backend, ir=ir)
    return {
        "full_states": full,
        "aggregation_ratio": float(full) / n if n else 1.0,
        "population_defect": worst,
    }


def _check_derive(capability, backend, ir, result, params) -> dict:
    # ``ir`` is the frontend's model object here; the sentinels run on
    # the freshly built MarkovIR instead — a derivation strategy that
    # assembles a malformed generator must not hand it downstream.
    if not isinstance(result, MarkovIR):
        _fail(
            "derive_type",
            f"derive backend returned {type(result).__name__}, not MarkovIR",
            capability=capability, backend=backend, ir=ir,
        )
    _check_generator(capability, backend, result)
    defect = result.generator_defect()
    out = {
        "n_states": result.n_states,
        "nnz": int(result.generator.nnz),
        "row_sum_defect": defect["row_sum"],
    }
    if result.orbits is not None:
        out.update(_check_orbits(capability, backend, ir, result))
    return out


def _rate_scale(ir: MarkovIR) -> float:
    diag_abs = np.abs(ir.generator.diagonal())
    return max(1.0, float(diag_abs.max()) if diag_abs.size else 1.0)


def _condition_memo(ir: MarkovIR) -> float | None:
    memo = getattr(ir, "_trust_condition", "unset")
    if memo != "unset":
        return memo
    kappa = diag.condition_estimate(ir.generator)
    object.__setattr__(ir, "_trust_condition", kappa)
    return kappa


def _check_steady(capability, backend, ir, result, params) -> dict:
    _check_generator(capability, backend, ir)
    pi = np.asarray(result.pi, dtype=np.float64)
    simplex = diag.simplex_defect(pi)
    if not simplex["finite"]:
        _fail("finite", "steady vector contains NaN/Inf",
              capability=capability, backend=backend, ir=ir)
    if simplex["min"] < -SIMPLEX_ATOL or simplex["mass_error"] > SIMPLEX_ATOL:
        _fail(
            "simplex",
            f"steady vector off the simplex (min {simplex['min']:.3e}, "
            f"mass error {simplex['mass_error']:.3e})",
            capability=capability, backend=backend, ir=ir,
            detail=max(-simplex["min"], simplex["mass_error"]),
        )
    residual = diag.steady_residual(ir.generator, pi)
    scale = _rate_scale(ir)
    if residual > RESIDUAL_RTOL * scale:
        _fail(
            "residual",
            f"‖pi@Q‖∞ = {residual:.3e} exceeds {RESIDUAL_RTOL * scale:.3e}",
            capability=capability, backend=backend, ir=ir, detail=residual,
        )
    return {
        "residual": residual,
        "reported_residual": float(getattr(result, "residual", math.nan)),
        "iterations": int(getattr(result, "iterations", 0)),
        "condition_estimate": _condition_memo(ir),
        "mass_error": simplex["mass_error"],
        "min_probability": float(pi.min()) if pi.size else 0.0,
        "n_states": ir.n_states,
    }


def _check_transient(capability, backend, ir, result, params) -> dict:
    _check_generator(capability, backend, ir)
    dist = np.asarray(result, dtype=np.float64)
    if not np.isfinite(dist).all():
        _fail("finite", "transient distribution contains NaN/Inf",
              capability=capability, backend=backend, ir=ir)
    worst_neg = float(min(dist.min(), 0.0)) if dist.size else 0.0
    if worst_neg < -SIMPLEX_ATOL:
        _fail("simplex", f"negative transient probability {worst_neg:.3e}",
              capability=capability, backend=backend, ir=ir, detail=worst_neg)
    mass_error = 0.0
    if dist.size:
        mass_error = float(np.abs(dist.sum(axis=1) - 1.0).max())
        if mass_error > 1e-6:
            _fail(
                "simplex",
                f"transient row mass off by {mass_error:.3e}",
                capability=capability, backend=backend, ir=ir, detail=mass_error,
            )
    times = np.asarray(params.get("times", ()), dtype=np.float64)
    t_max = float(times.max()) if times.size else 0.0
    out = diag.truncation_diagnostics(
        ir.generator, t_max, float(params.get("epsilon", 1e-12))
    )
    out.update(mass_error=mass_error, min_probability=worst_neg,
               n_states=ir.n_states)
    return out


def _check_passage(capability, backend, ir, result, params) -> dict:
    _check_generator(capability, backend, ir)
    cdf = np.asarray(result.cdf, dtype=np.float64)
    if not np.isfinite(cdf).all() or not math.isfinite(result.mean):
        _fail("finite", "passage CDF or mean contains NaN/Inf",
              capability=capability, backend=backend, ir=ir)
    if cdf.size and (cdf.min() < -1e-12 or cdf.max() > 1.0 + 1e-12):
        _fail(
            "cdf_range",
            f"passage CDF leaves [0, 1] (min {cdf.min():.3e}, max {cdf.max():.3e})",
            capability=capability, backend=backend, ir=ir,
        )
    drop = diag.monotonicity_defect(cdf)
    if drop > 1e-12:
        _fail("cdf_monotone", f"passage CDF decreases by {drop:.3e}",
              capability=capability, backend=backend, ir=ir, detail=drop)
    if result.mean < -1e-12:
        _fail("mean_sign", f"negative mean passage time {result.mean:.3e}",
              capability=capability, backend=backend, ir=ir, detail=result.mean)
    times = np.asarray(params.get("times", ()), dtype=np.float64)
    t_max = float(times.max()) if times.size else 0.0
    out = diag.truncation_diagnostics(
        ir.generator, t_max, float(params.get("epsilon", 1e-12))
    )
    out.update(
        monotonicity_defect=drop,
        cdf_final=float(cdf[-1]) if cdf.size else 0.0,
        mean=float(result.mean),
        n_states=ir.n_states,
    )
    return out


def _conservation_checks(capability, backend, ir, counts, kind) -> dict:
    """Conservation-law drift of a (n_times, n_species) trajectory."""
    if not isinstance(ir, ReactionIR):
        return {}
    W = ir.conservation_laws()
    defect = diag.conservation_defect(W, counts, np.asarray(ir.initial))
    scale = max(1.0, float(np.abs(np.asarray(ir.initial)).sum()))
    if defect > _CONSERVE_RTOL[kind] * scale:
        _fail(
            "conservation",
            f"conserved stoichiometric sums drift by {defect:.3e} "
            f"(allowed {_CONSERVE_RTOL[kind] * scale:.3e})",
            capability=capability, backend=backend, ir=ir, detail=defect,
        )
    return {"conservation_laws": int(W.shape[0]), "conservation_defect": defect}


def _check_ode(capability, backend, ir, result, params) -> dict:
    traj = np.asarray(result, dtype=np.float64)
    if not np.isfinite(traj).all():
        _fail("finite", "ODE trajectory contains NaN/Inf",
              capability=capability, backend=backend, ir=ir)
    worst_neg = float(min(traj.min(), 0.0)) if traj.size else 0.0
    atol = max(float(params.get("atol", 1e-10)), ODE_NEGATIVE_ATOL)
    if worst_neg < -atol:
        _fail("nonnegative", f"species drops to {worst_neg:.3e}",
              capability=capability, backend=backend, ir=ir, detail=worst_neg)
    out = {"min_value": worst_neg}
    out.update(_conservation_checks(capability, backend, ir, traj, "ode"))
    return out


def _check_ssa(capability, backend, ir, result, params) -> dict:
    # Three result shapes share the capability: a MarkovIR JumpPath, a
    # ReactionIR Trajectory, and the chunked EnsembleMoments of either.
    counts = getattr(result, "counts", None)
    mean = getattr(result, "mean", None)
    if counts is not None:
        counts = np.asarray(counts, dtype=np.float64)
        if not np.isfinite(counts).all():
            _fail("finite", "SSA trajectory contains NaN/Inf",
                  capability=capability, backend=backend, ir=ir)
        if counts.size and counts.min() < 0:
            _fail("nonnegative", f"negative SSA count {counts.min():.3e}",
                  capability=capability, backend=backend, ir=ir)
        out = {"events": int(getattr(result, "n_events", 0))}
        out.update(_conservation_checks(capability, backend, ir, counts, "ssa_path"))
        return out
    if mean is not None:
        mean = np.asarray(mean, dtype=np.float64)
        var = np.asarray(result.var, dtype=np.float64)
        if not (np.isfinite(mean).all() and np.isfinite(var).all()):
            _fail("finite", "SSA ensemble moments contain NaN/Inf",
                  capability=capability, backend=backend, ir=ir)
        if var.size and var.min() < -1e-9:
            _fail("variance_sign", f"negative ensemble variance {var.min():.3e}",
                  capability=capability, backend=backend, ir=ir,
                  detail=float(var.min()))
        out = {"events": int(getattr(result, "events", 0)),
               "n_runs": int(getattr(result, "n_runs", 0))}
        chunks = getattr(result, "chunks", None)
        n_runs = out["n_runs"]
        if chunks is not None and n_runs > 0:
            # Chunk boundaries own ensemble determinism: every kernel —
            # scalar, batched, parallel, resumed — must produce exactly
            # ceil(n_runs / CHUNK_RUNS) Welford partials.  A kernel that
            # compacted runs into a different chunk structure would merge
            # in a different order and silently break seeded replication.
            from repro.ir.backends.ssa import CHUNK_RUNS

            expected = -(-n_runs // CHUNK_RUNS)
            if int(chunks) != expected:
                _fail(
                    "chunk_structure",
                    f"ensemble built from {int(chunks)} chunks, expected "
                    f"{expected} for {n_runs} runs",
                    capability=capability, backend=backend, ir=ir,
                    detail=float(chunks),
                )
        out.update(
            _conservation_checks(capability, backend, ir, mean, "ssa_ensemble")
        )
        if isinstance(ir, MarkovIR) and mean.size:
            # Occupancy ensembles: mean rows are distributions over states.
            mass_error = float(np.abs(mean.sum(axis=1) - 1.0).max())
            if mass_error > SIMPLEX_ATOL:
                _fail("simplex", f"occupancy mass off by {mass_error:.3e}",
                      capability=capability, backend=backend, ir=ir,
                      detail=mass_error)
            out["mass_error"] = mass_error
        return out
    if hasattr(result, "states"):
        states = np.asarray(result.states)
        if states.size and (states.min() < 0 or states.max() >= ir.n_states):
            _fail("state_range", "jump path leaves the state space",
                  capability=capability, backend=backend, ir=ir)
        jt = np.asarray(result.jump_times, dtype=np.float64)
        if jt.size > 1 and (np.diff(jt) < 0).any():
            _fail("time_order", "jump times decrease along the path",
                  capability=capability, backend=backend, ir=ir)
        return {"events": int(result.n_events)}
    return {}


_CHECKS = {
    "derive": _check_derive,
    "steady": _check_steady,
    "transient": _check_transient,
    "passage": _check_passage,
    "ode": _check_ode,
    "ssa": _check_ssa,
}


def verify(capability: str, backend: str, ir, result, params: dict) -> dict:
    """Run the capability's sentinels on ``result`` and return diagnostics.

    Raises :class:`~repro.errors.NumericalTrustError` on any violation
    (after counting it as ``ir.trust.sentinel_violation``); on success
    the diagnostics dictionary is merged with any backend-deposited
    :func:`note` values, attached to ``result.meta["diagnostics"]`` when
    the result has a ``meta`` dict, and kept for :func:`last_diagnostics`.
    """
    reg = get_registry()
    reg.increment("ir.trust.checked")
    if faults.should_fire("sentinel_violation", backend=backend) is not None:
        _fail("injected", "injected sentinel violation",
              capability=capability, backend=backend, ir=ir)
    check = _CHECKS.get(capability)
    out = {"capability": capability, "backend": backend}
    if check is not None:
        out.update(check(capability, backend, ir, result, params))
    out.update(_drain_notes())
    meta = getattr(result, "meta", None)
    if isinstance(meta, dict):
        meta["diagnostics"] = out
    _last.data = out
    return out


# ---------------------------------------------------------------------------
# Shadow verification
# ---------------------------------------------------------------------------

def shadow_rate() -> float:
    """The sampled shadow-verification rate from ``$REPRO_SHADOW_RATE``.

    Malformed or out-of-range values warn once and disable shadowing
    rather than aborting production solves.
    """
    raw = os.environ.get(_SHADOW_ENV)
    if not raw:
        return 0.0
    try:
        rate = float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {_SHADOW_ENV}={raw!r} (expected a float)",
            stacklevel=2,
        )
        return 0.0
    return min(max(rate, 0.0), 1.0)


def shadow_due(capability: str, rate: float) -> bool:
    """Deterministic stratified sampling: of ``n`` requests, shadow
    ``floor(n * rate)`` of them, evenly spaced — no RNG, so a rerun
    shadows exactly the same requests."""
    if rate <= 0.0:
        return False
    with _shadow_lock:
        n = _shadow_counts.get(capability, 0) + 1
        _shadow_counts[capability] = n
    return math.floor(n * rate) > math.floor((n - 1) * rate)


def reset_shadow_state() -> None:
    """Reset the sampling counters (test isolation)."""
    with _shadow_lock:
        _shadow_counts.clear()


def shadow_backend(
    capability: str, primary: str, ir, explicit: str | None = None
) -> str | None:
    """Choose the independent backend to re-solve on (``None`` = skip).

    ``explicit`` (the CLI's ``--shadow``) wins when it differs from the
    primary; otherwise the first partner in the capability's preference
    list that is not the primary and fits the system size.  ``ssa`` is
    never shadowed — independent backends consume different RNG streams,
    so disagreement is expected, not suspicious.
    """
    if capability == "ssa":
        return None
    if explicit is not None:
        return explicit if explicit != primary else None
    hook = _SHADOW_HOOKS.get(capability)
    if hook is not None:
        return hook[0](primary, ir)
    n_states = getattr(ir, "n_states", 0)
    for name in _SHADOW_PARTNERS.get(capability, ()):
        if name == primary:
            continue
        if name in ("dense", "expm") and n_states > _DENSE_PARTNER_LIMIT:
            continue
        return name
    return None


def _comparable(capability: str, result) -> np.ndarray:
    if capability == "steady":
        return np.asarray(result.pi, dtype=np.float64)
    if capability == "passage":
        return np.asarray(result.cdf, dtype=np.float64)
    return np.asarray(result, dtype=np.float64)


def shadow_compare(
    capability: str,
    backend: str,
    shadow_name: str,
    ir,
    result,
    shadow_result,
    tolerance: float | None = None,
) -> dict:
    """Compare primary and shadow results; quarantine disagreements.

    Returns ``{"shadow_backend", "shadow_max_abs", "shadow_tolerance"}``
    on agreement, raising :class:`~repro.errors.NumericalTrustError`
    (``invariant="shadow_mismatch"``, counted as
    ``ir.trust.shadow_mismatch``) when the max-abs disagreement exceeds
    the tolerance — neither answer can be trusted at that point, which
    is precisely what the paper's container-vs-native validation would
    flag.
    """
    reg = get_registry()
    if tolerance is None:
        env_tol = os.environ.get(_SHADOW_TOL_ENV)
        try:
            tolerance = float(env_tol) if env_tol else DEFAULT_SHADOW_TOL.get(
                capability, 1e-8
            )
        except ValueError:
            tolerance = DEFAULT_SHADOW_TOL.get(capability, 1e-8)
    hook = _SHADOW_HOOKS.get(capability)
    if hook is not None:
        max_abs = float(hook[1](ir, result, shadow_result))
    else:
        a = _comparable(capability, result)
        b = _comparable(capability, shadow_result)
        if a.shape != b.shape:
            max_abs = math.inf
        else:
            max_abs = float(np.abs(a - b).max()) if a.size else 0.0
    if faults.should_fire("shadow_mismatch", backend=shadow_name) is not None:
        max_abs = math.inf
    reg.increment("ir.trust.shadow.checked")
    if max_abs > tolerance:
        # A mismatch is its own metric, not a sentinel violation: the
        # primary result passed every structural invariant — it is the
        # cross-backend agreement that failed.
        reg.increment("ir.trust.shadow_mismatch")
        raise NumericalTrustError(
            "shadow_mismatch",
            f"independent re-solve on {shadow_name!r} disagrees by "
            f"{max_abs:.3e} (tolerance {tolerance:.3e})",
            capability=capability,
            backend=backend,
            token=getattr(ir, "token", None),
            detail=max_abs,
        )
    return {
        "shadow_backend": shadow_name,
        "shadow_max_abs": max_abs,
        "shadow_tolerance": tolerance,
    }
