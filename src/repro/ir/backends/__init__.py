"""Solver backends: importing this package populates the registry.

Each submodule registers its backends at import time:

``markov``
    ``steady`` (sparse / dense / gmres / uniformization), ``transient``
    (uniformization / expm) and ``passage`` (uniformization / expm)
    over :class:`~repro.ir.markov.MarkovIR`.
``ssa``
    ``ssa`` (direct / next-reaction) over both IRs, plus the shared
    chunked-Welford ensemble machinery.
``ssa_batched``
    ``ssa`` (batched / auto) — vectorized ensemble kernels that are
    bit-identical to the scalar steppers, with a batched→scalar
    fallback chain.
``ode``
    ``ode`` (scipy / rk4) over :class:`~repro.ir.reaction.ReactionIR`.
"""

from repro.ir.backends import (  # noqa: F401  (registration)
    markov,
    ode,
    ssa,
    ssa_batched,
)
from repro.ir.backends.markov import DENSE_STATE_LIMIT, PassageSolution
from repro.ir.backends.ode import DefaultRhs
from repro.ir.backends.ssa import (
    CHUNK_RUNS,
    EnsembleMoments,
    JumpPath,
    Trajectory,
    as_rng,
    ensemble_moments,
    markov_path,
    occupancy_run,
    reaction_run,
    reaction_trajectory,
    reaction_trajectory_next_reaction,
    validate_grid,
)
from repro.ir.backends.ssa_batched import (
    ensemble_moments_batched,
    markov_occupancy_chunk,
    reaction_chunk,
)

__all__ = [
    "CHUNK_RUNS",
    "DENSE_STATE_LIMIT",
    "DefaultRhs",
    "EnsembleMoments",
    "JumpPath",
    "PassageSolution",
    "Trajectory",
    "as_rng",
    "ensemble_moments",
    "ensemble_moments_batched",
    "markov_occupancy_chunk",
    "markov_path",
    "reaction_chunk",
    "occupancy_run",
    "reaction_run",
    "reaction_trajectory",
    "reaction_trajectory_next_reaction",
    "validate_grid",
]
