"""Vectorized batched SSA ensemble kernels.

The scalar steppers in :mod:`repro.ir.backends.ssa` advance one
trajectory per Python loop iteration; for the paper's Table I / Fig. 3-6
ensembles (thousands of realizations, millions of events) that loop is
the dominant hot path.  This module advances a whole chunk of
realizations per NumPy call instead — batched propensity evaluation
across the live trajectories, vectorized grid-cursor advance and
reaction selection, and compaction of finished/absorbed paths out of
the working set — in the array-level spirit of Ding & Hillston's
numerical vector form.

Bit-identity contract
---------------------
The scalar steppers remain the *oracle* (exactly as the derivation fast
path kept ``derive_reference``): the batched kernel must reproduce every
seeded trajectory bit for bit.  Three disciplines make that possible:

* each realization still consumes only its own ``SeedSequence``-child
  stream, and waiting-time/selection draws stay interleaved per
  trajectory — the per-trajectory generator calls cannot be block-drawn
  without changing the stream, so they remain scalar calls while
  everything around them is batched;
* every vectorized reduction is elementwise or row-wise with the same
  operand order as the scalar code (``cumsum`` rows equal the scalar
  left-fold because adding ``0.0`` is exact; ``sum(axis=1)`` keeps
  NumPy's pairwise order per row; ``rng.choice`` is replicated by its
  own normalized-CDF inversion, which consumes the identical single
  uniform);
* chunk boundaries (:data:`~repro.ir.backends.ssa.CHUNK_RUNS`) still own
  determinism: the batch width *is* the chunk, Welford partials are
  computed per chunk in run order and merged in chunk order, so
  parallel, sequential, batched and scalar ensembles all agree bitwise.

Batched propensity evaluation uses ``ReactionIR.batch_propensities``
when the frontend attached one (elementwise-exact law forms only) and
self-checks its first evaluation against the scalar law; any
disagreement — or a request the kernel cannot serve, like trajectory
mode — raises :class:`~repro.errors.BatchedKernelError`, which the
``ssa`` fallback chain resolves to the scalar ``direct`` backend.
"""

from __future__ import annotations

import numpy as np

from repro.engine.cache import Uncacheable, canonical_key
from repro.engine.executor import run_tasks, spawn_seeds, welford_merge
from repro.engine.metrics import get_registry
from repro.errors import (
    BatchedKernelError,
    ConvergenceError,
    IRError,
    NumericalTrustError,
    SimulationLimitError,
    SingularGeneratorError,
)
from repro.ir.backends.ssa import (
    CHUNK_RUNS,
    EnsembleMoments,
    _ssa_solve,
    validate_grid,
)
from repro.ir.markov import MarkovIR
from repro.ir.reaction import ReactionIR
from repro.ir.registry import (
    RetryPolicy,
    register_backend,
    register_fallback_chain,
)

__all__ = [
    "batched_markov_tables",
    "markov_occupancy_chunk",
    "reaction_chunk",
    "ensemble_moments_batched",
]

#: Padded per-state jump tables beyond this many matrix entries fall
#: back to the scalar stepper rather than allocating a dense table.
_TABLE_ENTRY_LIMIT = 50_000_000


def batched_markov_tables(ir: MarkovIR):
    """Dense padded jump tables ``(CUM, TGT, deg, total)`` for batching.

    Row ``i`` holds state ``i``'s cumulative rates padded with ``+inf``
    (so a row-wise ``count(cum <= v)`` reproduces the scalar
    ``searchsorted(..., side="right")``) and its jump targets; ``deg``
    is the out-degree and ``total`` the exit rate.  Memoized on the IR
    like :meth:`~repro.ir.markov.MarkovIR.ssa_tables`.
    """
    memo = getattr(ir, "_batched_ssa_tables", None)
    if memo is not None:
        return memo
    tables = ir.ssa_tables()
    n = ir.n_states
    deg = np.array([t[1].size for t in tables], dtype=np.intp)
    width = int(deg.max()) if n else 0
    if n * max(width, 1) > _TABLE_ENTRY_LIMIT:
        raise BatchedKernelError(
            f"padded jump table would hold {n * width} entries "
            f"(> {_TABLE_ENTRY_LIMIT}); use the scalar stepper"
        )
    cum_pad = np.full((n, max(width, 1)), np.inf)
    tgt_pad = np.zeros((n, max(width, 1)), dtype=np.intp)
    total = np.zeros(n)
    for i, (cum, targets, _actions) in enumerate(tables):
        d = targets.size
        if d:
            cum_pad[i, :d] = cum
            tgt_pad[i, :d] = targets
            total[i] = cum[-1]
    memo = (cum_pad, tgt_pad, deg, total)
    object.__setattr__(ir, "_batched_ssa_tables", memo)
    return memo


def markov_occupancy_chunk(
    ir: MarkovIR,
    grid: np.ndarray,
    seeds,
    initial: int | None = None,
    max_events: int | None = None,
) -> tuple[list[np.ndarray], list[int]]:
    """One chunk of jump paths, advanced together; one-hot occupancies.

    Returns per-run ``(grid.size, n_states)`` occupancy matrices and
    event counts, bit-identical to running
    :func:`~repro.ir.backends.ssa.occupancy_run` per seed.
    """
    cum_pad, tgt_pad, deg, total = batched_markov_tables(ir)
    budget = 10_000_000 if max_events is None else max_events
    state0 = ir.initial_index if initial is None else int(initial)
    if not 0 <= state0 < ir.n_states:
        raise IRError(f"initial state {state0} out of range")
    n_runs = len(seeds)
    gens = [np.random.default_rng(s) for s in seeds]
    exp_draw = [g.exponential for g in gens]
    uni_draw = [g.random for g in gens]
    grid_size = grid.size
    state = np.full(n_runs, state0, dtype=np.intp)
    states_out = np.empty((n_runs, grid_size), dtype=np.intp)
    states_out[:, 0] = state
    cursor = np.ones(n_runs, dtype=np.intp)
    t = np.full(n_runs, float(grid[0]))
    events = np.zeros(n_runs, dtype=np.int64)
    # Every live row fires exactly one jump per round, so all live rows
    # share the same event count — the round number carries the budget.
    rounds = 0
    live = np.arange(n_runs) if grid_size > 1 else np.empty(0, dtype=np.intp)
    while live.size:
        st = state[live]
        tot = total[st]
        absorbed = tot <= 0.0
        if absorbed.any():
            for row in live[absorbed]:
                states_out[row, cursor[row]:] = state[row]
            keep = ~absorbed
            live, st, tot = live[keep], st[keep], tot[keep]
            if not live.size:
                break
        # Waiting times: one exponential per trajectory from its own
        # stream — the draws interleave with the selection uniforms on
        # one PCG64 stream each, so they cannot be block-drawn.
        scale = 1.0 / tot
        for j in range(live.size):
            row = live[j]
            t[row] += exp_draw[row](scale[j])
        new_cursor = np.searchsorted(grid, t[live], side="right")
        for j in np.flatnonzero(new_cursor > cursor[live]):
            row = live[j]
            states_out[row, cursor[row]:new_cursor[j]] = state[row]
        cursor[live] = new_cursor
        finished = new_cursor >= grid_size
        if finished.any():
            keep = ~finished
            live, st, tot = live[keep], st[keep], tot[keep]
            if not live.size:
                break
        if rounds >= budget:
            raise SimulationLimitError(
                f"simulation exceeded {budget} events",
                budget=budget, events=int(budget),
            )
        u = np.empty(live.size)
        for j in range(live.size):
            u[j] = uni_draw[live[j]]()
        # Row-wise inversion of the padded cumulative-rate rows: the
        # +inf padding makes count(cum <= v) equal the scalar
        # searchsorted(..., 'right') on the unpadded row.
        k = (cum_pad[st] <= (u * tot)[:, None]).sum(axis=1)
        k = np.minimum(k, deg[st] - 1)
        state[live] = tgt_pad[st, k]
        events[live] += 1
        rounds += 1
    occupancies = []
    idx = np.arange(grid_size)
    for b in range(n_runs):
        occ = np.zeros((grid_size, ir.n_states))
        occ[idx, states_out[b]] = 1.0
        occupancies.append(occ)
    return occupancies, [int(e) for e in events]


def _rowwise_propensities(ir: ReactionIR, states: np.ndarray) -> np.ndarray:
    if ir.n_reactions == 0:
        return np.zeros((states.shape[0], 0))
    return np.stack(
        [np.asarray(ir.propensities(x), dtype=np.float64) for x in states]
    )


def reaction_chunk(
    ir: ReactionIR,
    grid: np.ndarray,
    seeds,
    max_events: int | None = None,
) -> tuple[list[np.ndarray], list[int]]:
    """One chunk of direct-method realizations, advanced together.

    Returns per-run ``(grid.size, n_species)`` count matrices and event
    counts, bit-identical to :func:`~repro.ir.backends.ssa.reaction_run`
    per seed, for both the ``choice`` and ``scan`` samplers.
    """
    budget = 5_000_000 if max_events is None else max_events
    stoich_t = np.ascontiguousarray(ir.stoichiometry.T)
    x0 = ir.integer_initial()
    grid_size, n_rx = grid.size, ir.n_reactions
    n_runs = len(seeds)
    gens = [np.random.default_rng(s) for s in seeds]
    exp_draw = [g.exponential for g in gens]
    uni_draw = [g.random for g in gens]
    states = np.tile(x0, (n_runs, 1))
    out = np.empty((n_runs, grid_size, x0.size))
    out[:, 0] = x0
    cursor = np.ones(n_runs, dtype=np.intp)
    t = np.full(n_runs, float(grid[0]))
    events = np.zeros(n_runs, dtype=np.int64)
    # Every live row fires exactly one reaction per round, so all live
    # rows share the same event count — the round number is the budget.
    rounds = 0
    choice = ir.sampler == "choice"
    batch_eval = ir.batch_propensities
    self_checked = batch_eval is None
    live = np.arange(n_runs) if grid_size > 1 else np.empty(0, dtype=np.intp)
    while live.size:
        x_live = states[live]
        if batch_eval is not None:
            props = np.asarray(batch_eval(x_live), dtype=np.float64)
            if not self_checked:
                ref = _rowwise_propensities(ir, x_live)
                if props.shape != ref.shape or not np.array_equal(props, ref):
                    raise BatchedKernelError(
                        "batch propensity evaluator disagrees with the "
                        "scalar kinetic law"
                    )
                self_checked = True
        else:
            props = _rowwise_propensities(ir, x_live)
        if props.size and props.min() < 0.0:
            j = int(np.flatnonzero((props < 0.0).any(axis=1))[0])
            bad = ir.reaction_names[int(np.argmin(props[j]))]
            raise IRError(f"negative propensity for reaction {bad!r}")
        if choice:
            cum = None
            tot = props.sum(axis=1) if n_rx else np.zeros(live.size)
        else:
            # cumsum rows equal the scalar sequential left-fold (adding
            # 0.0 is exact), so tot matches ``float(sum(props))``.
            cum = np.cumsum(props, axis=1) if n_rx else None
            tot = cum[:, -1] if n_rx else np.zeros(live.size)
        frozen = tot <= 0.0
        if frozen.any():
            for row in live[frozen]:
                out[row, cursor[row]:] = states[row]
            keep = ~frozen
            live, props, tot = live[keep], props[keep], tot[keep]
            if cum is not None:
                cum = cum[keep]
            if not live.size:
                break
        scale = 1.0 / tot
        for j in range(live.size):
            row = live[j]
            t[row] += exp_draw[row](scale[j])
        new_cursor = np.searchsorted(grid, t[live], side="right")
        for j in np.flatnonzero(new_cursor > cursor[live]):
            row = live[j]
            out[row, cursor[row]:new_cursor[j]] = states[row]
        cursor[live] = new_cursor
        finished = new_cursor >= grid_size
        if finished.any():
            keep = ~finished
            live, props, tot = live[keep], props[keep], tot[keep]
            if cum is not None:
                cum = cum[keep]
            if not live.size:
                break
        if rounds >= budget:
            raise SimulationLimitError(
                f"simulation exceeded {budget} events before the horizon",
                budget=budget, events=int(budget),
            )
        u = np.empty(live.size)
        for j in range(live.size):
            u[j] = uni_draw[live[j]]()
        if choice:
            # Bit-exact replication of rng.choice(n, p=props/total): the
            # generator normalizes p, cumsums, renormalizes the CDF by
            # its last entry, and inverts one uniform with
            # searchsorted(..., 'right').
            norm = props / tot[:, None]
            cdf = np.cumsum(norm, axis=1)
            last = cdf[:, -1].copy()
            cdf = cdf / last[:, None]
            k = (cdf <= u[:, None]).sum(axis=1)
            k = np.minimum(k, n_rx - 1)
        else:
            # Positive-only scan: first positive slot whose running sum
            # reaches u*total, else the last positive slot.
            threshold = u * tot
            hit = (props > 0.0) & (threshold[:, None] <= cum)
            k = hit.argmax(axis=1)
            has_hit = hit.any(axis=1)
            if not has_hit.all():
                last_positive = n_rx - 1 - np.argmax(
                    props[:, ::-1] > 0.0, axis=1
                )
                k = np.where(has_hit, k, last_positive)
        states[live] += stoich_t[k]
        negative = np.flatnonzero((states[live] < 0).any(axis=1))
        if negative.size:
            rx = ir.reaction_names[int(k[negative[0]])]
            raise IRError(
                f"reaction {rx!r} fired with insufficient reactants — its "
                "kinetic law does not vanish at zero amounts"
            )
        events[live] += 1
        rounds += 1
    return [out[b] for b in range(n_runs)], [int(e) for e in events]


# ---------------------------------------------------------------------------
# Chunked ensemble driver (same determinism contract as the scalar one)
# ---------------------------------------------------------------------------

#: Chunks simulated together per batched task.  The per-round NumPy and
#: bookkeeping overhead amortizes over the batch width while the
#: per-trajectory scalar RNG draws scale linearly, so a wider batch is
#: nearly free throughput — but Welford partials are still folded per
#: :data:`~repro.ir.backends.ssa.CHUNK_RUNS` chunk in run order and
#: merged in chunk order, so the chunk structure (and with it seeded
#: replication) is untouched by the width.
SUPER_CHUNKS = 4


def _batched_chunk(task) -> list[tuple[int, np.ndarray, np.ndarray, int]]:
    """Worker: per-chunk Welford partials over one batched sweep.

    The task's whole seed slice (up to ``SUPER_CHUNKS`` chunks) advances
    together through the vectorized kernel; the Welford fold then visits
    the finished runs chunk by chunk in run order with the same
    arithmetic as the scalar ``_ensemble_chunk``, so each partial is
    bit-identical given bit-identical trajectories.
    """
    kind, payload, grid, seeds, budget = task
    if kind == "occupancy":
        ir, initial = payload
        runs, run_events = markov_occupancy_chunk(
            ir, grid, seeds, initial=initial, max_events=budget
        )
    else:
        runs, run_events = reaction_chunk(
            payload, grid, seeds, max_events=budget
        )
    partials = []
    for lo in range(0, len(seeds), CHUNK_RUNS):
        chunk = runs[lo : lo + CHUNK_RUNS]
        mean = m2 = None
        for k, counts in enumerate(chunk, start=1):
            if mean is None:
                mean = np.zeros_like(counts)
                m2 = np.zeros_like(counts)
            delta = counts - mean
            mean += delta / k
            m2 += delta * (counts - mean)
        partials.append(
            (len(chunk), mean, m2,
             int(sum(run_events[lo : lo + CHUNK_RUNS])))
        )
    return partials


def _batched_checkpoint_key(kind, payload, grid, n_runs, seed, max_events):
    ident = payload[0] if isinstance(payload, tuple) else payload
    if getattr(ident, "token", True) is None:
        return None
    try:
        parts = ("ensemble-batched", kind, payload, grid, int(n_runs), int(seed))
        if max_events is not None:
            parts = parts + (int(max_events),)
        return canonical_key(*parts)
    except Uncacheable:
        return None


def ensemble_moments_batched(
    kind: str,
    payload,
    grid: np.ndarray,
    n_runs: int,
    seed: int,
    max_events=None,
    timer_name: str = "ssa_ensemble_batched",
) -> EnsembleMoments:
    """Streaming ensemble moments through the batched kernels.

    Same determinism contract as
    :func:`~repro.ir.backends.ssa.ensemble_moments` — one seed child per
    realization, fixed :data:`~repro.ir.backends.ssa.CHUNK_RUNS` chunk
    boundaries, Welford partials merged in chunk order — and the same
    result bit for bit, because each chunk's batched trajectories equal
    the scalar ones.  Checkpoints use the distinct ``ensemble-batched``
    namespace (partials are interchangeable with the scalar kernel's,
    but a resumed batch must re-verify with the kernel that wrote it).
    """
    if n_runs < 1:
        raise IRError("ensemble needs at least one run")
    seeds = spawn_seeds(seed, n_runs)
    stride = CHUNK_RUNS * SUPER_CHUNKS
    n_chunks = -(-n_runs // CHUNK_RUNS)
    with get_registry().timer(timer_name) as gauges:
        tasks = [
            (kind, payload, grid, seeds[lo : lo + stride], max_events)
            for lo in range(0, n_runs, stride)
        ]
        grouped = run_tasks(
            _batched_chunk, tasks, checkpoint=_batched_checkpoint_key(
                kind, payload, grid, n_runs, seed, max_events
            )
        )
        count, mean, m2 = 0, 0.0, 0.0
        events = 0
        for group in grouped:
            for chunk_count, chunk_mean, chunk_m2, chunk_events in group:
                count, mean, m2 = welford_merge(
                    (count, mean, m2), (chunk_count, chunk_mean, chunk_m2)
                )
                events += chunk_events
        var = m2 / (n_runs - 1) if n_runs > 1 else np.zeros_like(m2)
        gauges["n_runs"] = n_runs
        gauges["events"] = events
    return EnsembleMoments(
        times=grid,
        mean=mean,
        var=var,
        n_runs=n_runs,
        events=events,
        chunks=n_chunks,
        meta={"events": events, "chunks": n_chunks, "chunk_runs": CHUNK_RUNS,
              "kernel": "batched"},
    )


# ---------------------------------------------------------------------------
# Registry entry points
# ---------------------------------------------------------------------------

def _ssa_batched(ir, *, times, seed=0, mode="trajectory", n_runs=100,
                 initial=None, max_events=None):
    grid = validate_grid(times)
    if mode != "ensemble":
        raise BatchedKernelError(
            "the batched SSA kernel serves ensembles only; trajectory mode "
            "falls back to the scalar stepper"
        )
    if isinstance(ir, MarkovIR):
        return ensemble_moments_batched(
            "occupancy", (ir, initial), grid, n_runs, seed,
            max_events=max_events,
        )
    return ensemble_moments_batched(
        "reaction", ir, grid, n_runs, seed, max_events=max_events
    )


def _ssa_auto(ir, *, mode="trajectory", **params):
    """Mode-directed selection: ensembles go batched, paths go scalar."""
    if mode == "ensemble":
        return _ssa_batched(ir, mode=mode, **params)
    return _ssa_solve(ir, variant="direct", mode=mode, **params)


register_backend(
    "ssa",
    "batched",
    _ssa_batched,
    accepts=(MarkovIR, ReactionIR),
    aliases=("ssa.batched",),
    cache=False,
)
register_backend(
    "ssa",
    "auto",
    _ssa_auto,
    accepts=(MarkovIR, ReactionIR),
    cache=False,
)
# Batched -> scalar: safe to resolve silently because the kernels are
# bit-identical — falling back changes throughput, never the numbers.
# ``next-reaction`` stays outside the chain (different RNG stream).
register_fallback_chain(
    "ssa",
    ("batched", "direct"),
    RetryPolicy(
        recoverable=(
            ConvergenceError,
            SingularGeneratorError,
            NumericalTrustError,
            BatchedKernelError,
        )
    ),
)
