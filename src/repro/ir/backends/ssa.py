"""Stochastic simulation backends: Gillespie direct and next-reaction.

This module owns the *single* jump-process stepper the three frontends
used to reimplement (``pepa/simulation.py``, ``biopepa/ssa.py``,
``gpepa/simulation.py``).  Seeded trajectories must stay bit-identical
to the pre-IR simulators, so the RNG-consumption discipline is part of
the IR contract:

* :class:`~repro.ir.markov.MarkovIR` paths draw
  ``rng.exponential(1/total)`` then invert the per-state cumulative-rate
  table with ``searchsorted(cum, rng.random() * total)`` (PEPA's
  discipline);
* :class:`~repro.ir.reaction.ReactionIR` with ``sampler="choice"``
  draws ``rng.exponential`` then ``rng.choice`` on the normalized
  propensities (Bio-PEPA's discipline);
* ``sampler="scan"`` draws ``rng.exponential`` then linearly scans the
  positive propensities for ``rng.random() * total`` (GPEPA's
  discipline; zero-propensity reactions neither accumulate nor fire).

Ensembles follow the PR-1 determinism contract for *every* frontend:
one ``SeedSequence`` child per realization (:func:`spawn_seeds`), fixed
chunks of :data:`CHUNK_RUNS` runs whose Welford partials are merged in
chunk order, so ``engine.parallel`` fan-out is bit-identical to the
sequential reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.cache import Uncacheable, canonical_key
from repro.engine.executor import run_tasks, spawn_seeds, welford_merge
from repro.engine.metrics import get_registry
from repro.errors import BackendError, IRError, SimulationLimitError
from repro.ir.markov import MarkovIR
from repro.ir.reaction import ReactionIR
from repro.ir.registry import register_backend

__all__ = [
    "CHUNK_RUNS",
    "JumpPath",
    "Trajectory",
    "EnsembleMoments",
    "validate_grid",
    "as_rng",
    "markov_path",
    "reaction_trajectory",
    "reaction_trajectory_next_reaction",
    "ensemble_moments",
    "occupancy_run",
    "reaction_run",
]

#: Realizations per ensemble work unit.  Fixed — never derived from the
#: worker count — so chunk boundaries, and therefore every floating-
#: point reduction, are identical however the chunks are scheduled.
CHUNK_RUNS = 25


@dataclass(frozen=True)
class JumpPath:
    """One realization of a MarkovIR jump process on a fixed grid."""

    times: np.ndarray
    states: np.ndarray
    jump_times: np.ndarray
    jump_actions: tuple[str, ...]
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def n_events(self) -> int:
        return self.jump_times.size


@dataclass(frozen=True)
class Trajectory:
    """One realization of a ReactionIR jump process on a fixed grid."""

    times: np.ndarray
    counts: np.ndarray
    n_events: int
    meta: dict = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class EnsembleMoments:
    """Streaming mean / sample variance (``ddof=1``) over realizations."""

    times: np.ndarray
    mean: np.ndarray
    var: np.ndarray
    n_runs: int
    events: int
    chunks: int
    meta: dict = field(default_factory=dict, compare=False)


def validate_grid(times) -> np.ndarray:
    """A strictly increasing, non-empty float64 sample grid."""
    grid = np.asarray(times, dtype=np.float64)
    if grid.ndim != 1 or grid.size < 1:
        raise IRError("simulation needs a non-empty time grid")
    if (np.diff(grid) <= 0).any():
        raise IRError("simulation time grid must be strictly increasing")
    return grid


def as_rng(seed) -> np.random.Generator:
    """An existing generator, or a fresh one from an integer seed."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Direct-method steppers
# ---------------------------------------------------------------------------

def markov_path(
    ir: MarkovIR,
    grid: np.ndarray,
    rng: np.random.Generator,
    initial: int | None = None,
    max_events: int = 10_000_000,
) -> JumpPath:
    """One jump path of a labelled CTMC, sampled on ``grid``.

    Self-loop transitions are excluded by the IR's jump tables (they do
    not change the state, and the generator already drops them).
    """
    tables = ir.ssa_tables()
    state = ir.initial_index if initial is None else int(initial)
    if not 0 <= state < ir.n_states:
        raise IRError(f"initial state {state} out of range")
    out_states = np.empty(grid.size, dtype=np.intp)
    out_states[0] = state
    jump_times: list[float] = []
    jump_actions: list[str] = []
    t = float(grid[0])
    cursor = 1
    while cursor < grid.size:
        cum, targets, actions = tables[state]
        if cum.size == 0 or cum[-1] <= 0.0:
            out_states[cursor:] = state  # absorbed
            break
        t += rng.exponential(1.0 / cum[-1])
        while cursor < grid.size and grid[cursor] <= t:
            out_states[cursor] = state
            cursor += 1
        if cursor >= grid.size:
            break
        # Budget check *before* the jump is drawn: a path that reaches
        # the horizon with exactly ``max_events`` jumps is admitted, the
        # (max_events+1)-th jump is refused before it consumes RNG draws
        # or is recorded — the same pre-fire semantics as the reaction
        # steppers.
        if len(jump_times) >= max_events:
            raise SimulationLimitError(
                f"simulation exceeded {max_events} events",
                budget=max_events, events=len(jump_times),
            )
        k = int(np.searchsorted(cum, rng.random() * cum[-1], side="right"))
        k = min(k, targets.size - 1)
        jump_times.append(t)
        jump_actions.append(actions[k])
        state = int(targets[k])
    return JumpPath(
        times=grid,
        states=out_states,
        jump_times=np.asarray(jump_times),
        jump_actions=tuple(jump_actions),
    )


def _select_choice(rng: np.random.Generator, props: np.ndarray, total: float) -> int:
    return int(rng.choice(props.size, p=props / total))


def _select_scan(rng: np.random.Generator, props: np.ndarray, total: float) -> int:
    u = rng.random() * total
    acc = 0.0
    chosen = last_positive = None
    for k in range(props.size):
        a = float(props[k])
        if a <= 0.0:
            # Zero-propensity slots neither accumulate nor fire; the
            # running sum therefore matches the positive-only scan of
            # the pre-IR GPEPA simulator bit for bit.
            continue
        last_positive = k
        acc += a
        if u <= acc:
            chosen = k
            break
    return chosen if chosen is not None else last_positive


def reaction_trajectory(
    ir: ReactionIR,
    grid: np.ndarray,
    rng: np.random.Generator,
    max_events: int = 5_000_000,
) -> Trajectory:
    """One Gillespie direct-method realization on a time grid."""
    N = ir.stoichiometry
    x = ir.integer_initial()
    out = np.empty((grid.size, x.size))
    out[0] = x
    t = float(grid[0])
    cursor = 1
    events = 0
    choice = ir.sampler == "choice"
    select = _select_choice if choice else _select_scan
    while cursor < grid.size:
        props = ir.propensities(x)
        # Both samplers validate negativity: ``scan`` skips negative
        # slots when selecting but ``float(sum(props))`` would still
        # fold them into the total, corrupting waiting times and the
        # selection threshold — a negative law is a model error, not a
        # samplable state.
        pvals = np.asarray(props, dtype=np.float64)
        if (pvals < 0).any():
            bad = ir.reaction_names[int(np.argmin(pvals))]
            raise IRError(f"negative propensity for reaction {bad!r}")
        # float(sum(...)) iterates sequentially — bit-equal to the old
        # positive-only Python-list sum because adding 0.0 is exact;
        # props.sum() keeps NumPy's pairwise order for "choice".
        total = float(props.sum()) if choice else float(sum(props))
        if props.size == 0 or total <= 0.0:
            out[cursor:] = x  # frozen for all time
            break
        t += rng.exponential(1.0 / total)
        while cursor < grid.size and grid[cursor] <= t:
            out[cursor] = x
            cursor += 1
        if cursor >= grid.size:
            break
        if events >= max_events:
            raise SimulationLimitError(
                f"simulation exceeded {max_events} events before the horizon",
                budget=max_events, events=events,
            )
        r = select(rng, props, total)
        x = x + N[:, r]
        if (x < 0).any():
            rx = ir.reaction_names[r]
            raise IRError(
                f"reaction {rx!r} fired with insufficient reactants — its kinetic "
                "law does not vanish at zero amounts"
            )
        events += 1
    return Trajectory(times=grid, counts=out, n_events=events)


def reaction_trajectory_next_reaction(
    ir: ReactionIR,
    grid: np.ndarray,
    rng: np.random.Generator,
    max_events: int = 5_000_000,
) -> Trajectory:
    """One realization by Anderson's modified next-reaction method.

    Statistically equivalent to the direct method but with a different
    RNG stream: each reaction owns a unit-rate internal clock, and the
    next event is the reaction whose integrated propensity first reaches
    its threshold.  One exponential draw per firing (after the initial
    per-reaction thresholds) instead of two uniforms.
    """
    N = ir.stoichiometry
    x = ir.integer_initial()
    out = np.empty((grid.size, x.size))
    out[0] = x
    n_rx = ir.n_reactions
    # Internal clocks: next firing thresholds P and elapsed internal
    # times T, both in unit-rate exponential time.
    thresholds = rng.exponential(size=n_rx) if n_rx else np.empty(0)
    internal = np.zeros(n_rx)
    t = float(grid[0])
    cursor = 1
    events = 0
    while cursor < grid.size:
        props = np.asarray(ir.propensities(x), dtype=np.float64)
        if (props < 0).any():
            bad = ir.reaction_names[int(np.argmin(props))]
            raise IRError(f"negative propensity for reaction {bad!r}")
        active = props > 0.0
        if not active.any():
            out[cursor:] = x
            break
        waits = np.full(n_rx, np.inf)
        waits[active] = (thresholds[active] - internal[active]) / props[active]
        r = int(np.argmin(waits))
        dt = float(waits[r])
        t += dt
        while cursor < grid.size and grid[cursor] <= t:
            out[cursor] = x
            cursor += 1
        if cursor >= grid.size:
            break
        if events >= max_events:
            raise SimulationLimitError(
                f"simulation exceeded {max_events} events before the horizon",
                budget=max_events, events=events,
            )
        internal += props * dt
        thresholds[r] += rng.exponential()
        x = x + N[:, r]
        if (x < 0).any():
            rx = ir.reaction_names[r]
            raise IRError(
                f"reaction {rx!r} fired with insufficient reactants — its kinetic "
                "law does not vanish at zero amounts"
            )
        events += 1
    return Trajectory(times=grid, counts=out, n_events=events)


# ---------------------------------------------------------------------------
# Chunked ensembles (one code path for all frontends)
# ---------------------------------------------------------------------------

def reaction_run(payload, grid, rng, max_events=None):
    """Ensemble runner: one direct-method realization of a ReactionIR."""
    if max_events is None:
        traj = reaction_trajectory(payload, grid, rng)
    else:
        traj = reaction_trajectory(payload, grid, rng, max_events=max_events)
    return traj.counts, traj.n_events


def reaction_run_next_reaction(payload, grid, rng, max_events=None):
    """Ensemble runner: one next-reaction realization of a ReactionIR."""
    if max_events is None:
        traj = reaction_trajectory_next_reaction(payload, grid, rng)
    else:
        traj = reaction_trajectory_next_reaction(
            payload, grid, rng, max_events=max_events
        )
    return traj.counts, traj.n_events


def occupancy_run(payload, grid, rng, max_events=None):
    """Ensemble runner: one MarkovIR path as a one-hot occupancy matrix."""
    ir, initial = payload
    if max_events is None:
        path = markov_path(ir, grid, rng, initial=initial)
    else:
        path = markov_path(ir, grid, rng, initial=initial, max_events=max_events)
    occ = np.zeros((grid.size, ir.n_states))
    occ[np.arange(grid.size), path.states] = 1.0
    return occ, path.n_events


def _ensemble_chunk(task) -> tuple[int, np.ndarray, np.ndarray, int]:
    """Worker: Welford partials ``(count, mean, m2, events)`` over one
    chunk of independently seeded realizations.

    Tasks are 4-tuples historically and 5-tuples when an event budget is
    threaded through; budget-less calls keep the 3-argument runner
    signature so existing custom runners stay compatible.
    """
    runner, payload, grid, seeds, *rest = task
    budget = rest[0] if rest else None
    mean = m2 = None
    events = 0
    for k, seed_seq in enumerate(seeds, start=1):
        rng = np.random.default_rng(seed_seq)
        if budget is None:
            counts, n_events = runner(payload, grid, rng)
        else:
            counts, n_events = runner(payload, grid, rng, max_events=budget)
        if mean is None:
            mean = np.zeros_like(counts)
            m2 = np.zeros_like(counts)
        delta = counts - mean
        mean += delta / k
        m2 += delta * (counts - mean)
        events += n_events
    return len(seeds), mean, m2, events


def _checkpoint_key(runner, payload, grid, n_runs: int, seed: int,
                    max_events=None) -> str | None:
    """Content-addressed batch key for checkpointed ensembles.

    ``None`` (checkpointing skipped) when the payload has no canonical
    hash, or when its identity token is explicitly ``None`` — a
    tokenless IR marks itself as not content-addressable, and hashing it
    anyway would collide distinct models onto one key.
    """
    ident = payload[0] if isinstance(payload, tuple) else payload
    if getattr(ident, "token", True) is None:
        return None
    name = getattr(
        runner, "checkpoint_name", getattr(runner, "__qualname__", repr(runner))
    )
    try:
        # Budget-less keys keep their historical shape so checkpoints
        # written before budgets were threaded through remain valid.
        parts = ("ensemble", name, payload, grid, int(n_runs), int(seed))
        if max_events is not None:
            parts = parts + (int(max_events),)
        return canonical_key(*parts)
    except Uncacheable:
        return None


def ensemble_moments(
    runner,
    payload,
    grid: np.ndarray,
    n_runs: int,
    seed: int,
    timer_name: str = "ssa_ensemble",
    max_events=None,
) -> EnsembleMoments:
    """Streaming mean / sample variance over ``n_runs`` realizations.

    Realization ``i`` is driven by the ``i``-th child of
    ``SeedSequence(seed)``, so the result is a pure function of
    ``(payload, grid, n_runs, seed)`` — never of how runs are scheduled.
    Runs are processed in fixed chunks whose Welford partials are merged
    in chunk order; under ``engine.parallel(workers=...)`` the chunks
    execute on a process pool and the result is bit-identical to the
    sequential one.  ``var`` uses the unbiased ``ddof=1`` normalization.

    When a checkpoint store is active (``$REPRO_CHECKPOINT_DIR``), chunk
    partials are persisted as they complete under a key derived from the
    same content hash as the result cache, so an interrupted ensemble
    resumes from its completed chunks — and, the reduction order being
    fixed, still matches the uninterrupted result bit for bit.
    """
    if n_runs < 1:
        raise IRError("ensemble needs at least one run")
    seeds = spawn_seeds(seed, n_runs)
    with get_registry().timer(timer_name) as gauges:
        tasks = [
            (runner, payload, grid, seeds[lo : lo + CHUNK_RUNS])
            if max_events is None
            else (runner, payload, grid, seeds[lo : lo + CHUNK_RUNS], max_events)
            for lo in range(0, n_runs, CHUNK_RUNS)
        ]
        partials = run_tasks(
            _ensemble_chunk, tasks, checkpoint=_checkpoint_key(
                runner, payload, grid, n_runs, seed, max_events
            )
        )
        count, mean, m2 = 0, 0.0, 0.0
        events = 0
        for chunk_count, chunk_mean, chunk_m2, chunk_events in partials:
            count, mean, m2 = welford_merge(
                (count, mean, m2), (chunk_count, chunk_mean, chunk_m2)
            )
            events += chunk_events
        var = m2 / (n_runs - 1) if n_runs > 1 else np.zeros_like(m2)
        gauges["n_runs"] = n_runs
        gauges["events"] = events
    return EnsembleMoments(
        times=grid,
        mean=mean,
        var=var,
        n_runs=n_runs,
        events=events,
        chunks=len(tasks),
        meta={"events": events, "chunks": len(tasks), "chunk_runs": CHUNK_RUNS},
    )


# ---------------------------------------------------------------------------
# Registry entry points
# ---------------------------------------------------------------------------

_RUNNERS = {
    "direct": reaction_run,
    "next-reaction": reaction_run_next_reaction,
}


def _ssa_solve(ir, *, variant, times, seed=0, mode="trajectory", n_runs=100,
               initial=None, max_events=None):
    grid = validate_grid(times)
    if isinstance(ir, MarkovIR):
        if variant != "direct":
            raise BackendError(
                "next-reaction simulation needs a ReactionIR (per-reaction "
                "clocks have no analogue in a per-state jump table)"
            )
        budget = 10_000_000 if max_events is None else max_events
        if mode == "trajectory":
            return markov_path(ir, grid, as_rng(seed), initial=initial,
                               max_events=budget)
        return ensemble_moments(occupancy_run, (ir, initial), grid, n_runs,
                                seed, max_events=max_events)
    budget = 5_000_000 if max_events is None else max_events
    if mode == "trajectory":
        step = (reaction_trajectory if variant == "direct"
                else reaction_trajectory_next_reaction)
        return step(ir, grid, as_rng(seed), max_events=budget)
    return ensemble_moments(_RUNNERS[variant], ir, grid, n_runs, seed,
                            max_events=max_events)


def _ssa_direct(ir, **params):
    return _ssa_solve(ir, variant="direct", **params)


def _ssa_next_reaction(ir, **params):
    return _ssa_solve(ir, variant="next-reaction", **params)


register_backend(
    "ssa",
    "direct",
    _ssa_direct,
    accepts=(MarkovIR, ReactionIR),
    aliases=("gillespie",),
    cache=False,
    default=True,
)
register_backend(
    "ssa",
    "next-reaction",
    _ssa_next_reaction,
    accepts=(ReactionIR,),
    cache=False,
)
