"""Deterministic (ODE) backends for reaction networks.

Integrates ``dx/dt = N @ v(clip(x, 0))`` — or the IR's custom ``rhs``
when the frontend's flow computation is richer (GPEPA's normalized-min
sharing) — with either SciPy's ``solve_ivp`` or the deterministic
fixed-step RK4 used by the container-validation harness.  Trajectories
are clipped at zero after integration, matching both pre-IR frontends.
"""

from __future__ import annotations

import numpy as np

from repro.ir import guards
from repro.ir.reaction import ReactionIR
from repro.ir.registry import register_backend, register_fallback_chain
from repro.numerics.ode import integrate_ode, rk4_fixed_step

__all__ = ["DefaultRhs"]


class DefaultRhs:
    """Picklable default right-hand side ``N @ v(clip(x, 0))``.

    Transient negative round-off is clamped before evaluating laws that
    may divide by species amounts.
    """

    def __init__(self, ir: ReactionIR):
        self.stoichiometry = ir.stoichiometry
        self.propensities = ir.propensities

    def __call__(self, _t: float, y: np.ndarray) -> np.ndarray:
        rates = self.propensities(np.clip(y, 0.0, None))
        return self.stoichiometry @ rates


def _rhs_of(ir: ReactionIR):
    return ir.rhs if ir.rhs is not None else DefaultRhs(ir)


def _initial_of(ir: ReactionIR, initial) -> np.ndarray:
    if initial is None:
        return np.asarray(ir.initial, dtype=np.float64).copy()
    return np.asarray(initial, dtype=np.float64)


def _ode_scipy(ir: ReactionIR, *, times, initial=None, method="LSODA",
               rtol=1e-8, atol=1e-10):
    stats: dict = {}
    try:
        counts = integrate_ode(
            _rhs_of(ir), _initial_of(ir, initial), times,
            method=method, rtol=rtol, atol=atol, stats=stats,
        )
    finally:
        guards.note(**stats)
    return np.clip(counts, 0.0, None)


def _ode_rk4(ir: ReactionIR, *, times, initial=None, substeps=16, **_ignored):
    t = np.asarray(times, dtype=np.float64)
    counts = rk4_fixed_step(
        _rhs_of(ir), _initial_of(ir, initial), times, substeps=substeps
    )
    guards.note(
        ode_method="rk4",
        ode_nfev=4 * substeps * max(t.size - 1, 0),
    )
    return np.clip(counts, 0.0, None)


register_backend(
    "ode", "scipy", _ode_scipy, accepts=(ReactionIR,), default=True
)
register_backend("ode", "rk4", _ode_rk4, accepts=(ReactionIR,))

# If the adaptive integrator reports non-convergence, the deterministic
# fixed-step RK4 of the validation harness still yields a trajectory.
register_fallback_chain("ode", ("scipy", "rk4"))
