"""CTMC solver backends: steady-state, transient, and passage time.

Thin adapters from :class:`~repro.ir.markov.MarkovIR` onto the shared
numerics.  ``steady`` delegates to :func:`repro.numerics.steady_state`,
which carries its own metrics timer and content-addressed cache (keyed
on the generator), so those registrations opt out of the registry-level
cache — one cache layer per solve, never two.  ``transient`` and
``passage`` are pure functions of the IR and their parameters and cache
at the registry level under ``ir.transient`` / ``ir.passage``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.errors import BackendError
from repro.ir.markov import MarkovIR
from repro.ir.registry import register_backend, register_fallback_chain
from repro.numerics.steady import steady_state
from repro.numerics.transient import (
    absorption_cdf,
    expected_hitting_time,
    transient_distribution,
)

__all__ = ["PassageSolution", "DENSE_STATE_LIMIT"]

#: Dense (``expm`` / LAPACK) backends refuse larger systems.
DENSE_STATE_LIMIT = 2000


@dataclass(frozen=True)
class PassageSolution:
    """A sampled first-passage CDF with its exact mean."""

    times: np.ndarray
    cdf: np.ndarray
    mean: float
    meta: dict = field(default_factory=dict, compare=False)


# ---------------------------------------------------------------------------
# steady
# ---------------------------------------------------------------------------

def _steady(method):
    def run(ir: MarkovIR, **params):
        return steady_state(ir.generator, method=method, **params)

    return run


register_backend(
    "steady",
    "sparse",
    _steady("direct"),
    accepts=(MarkovIR,),
    aliases=("direct",),
    cache=False,
    default=True,
)
register_backend(
    "steady", "dense", _steady("dense"), accepts=(MarkovIR,), cache=False
)
register_backend(
    "steady", "gmres", _steady("gmres"), accepts=(MarkovIR,), cache=False
)
register_backend(
    "steady",
    "uniformization",
    _steady("power"),
    accepts=(MarkovIR,),
    aliases=("power",),
    cache=False,
)

# An iterative steady solve that fails to converge falls back to the
# sparse direct factorization, then (for small systems) dense LAPACK.
register_fallback_chain("steady", ("gmres", "sparse", "dense"))


# ---------------------------------------------------------------------------
# transient
# ---------------------------------------------------------------------------

def _resolve_pi0(ir: MarkovIR, pi0) -> np.ndarray:
    if pi0 is None:
        return ir.initial_distribution()
    return np.asarray(pi0, dtype=np.float64)


def _transient_uniformization(ir: MarkovIR, *, times, pi0=None, epsilon=1e-12):
    return transient_distribution(
        ir.generator, _resolve_pi0(ir, pi0), times, epsilon
    )


def _check_dense_limit(ir: MarkovIR) -> None:
    if ir.n_states > DENSE_STATE_LIMIT:
        raise BackendError(
            f"dense expm backends are limited to {DENSE_STATE_LIMIT} states "
            f"(got {ir.n_states}); use uniformization"
        )


def _transient_expm(ir: MarkovIR, *, times, pi0=None, epsilon=1e-12):
    _check_dense_limit(ir)
    p0 = _resolve_pi0(ir, pi0)
    Q = ir.generator.toarray()
    times = np.asarray(times, dtype=np.float64)
    out = np.empty((times.size, ir.n_states))
    for i, t in enumerate(times):
        out[i] = p0 @ scipy.linalg.expm(Q * t)
    return out


register_backend(
    "transient",
    "uniformization",
    _transient_uniformization,
    accepts=(MarkovIR,),
    default=True,
)
register_backend("transient", "expm", _transient_expm, accepts=(MarkovIR,))


# ---------------------------------------------------------------------------
# passage
# ---------------------------------------------------------------------------

def _finish_passage(ir, pi0, targets, times, cdf) -> PassageSolution:
    cdf = np.clip(cdf, 0.0, 1.0)
    # Enforce monotonicity against truncation-level round-off.
    cdf = np.maximum.accumulate(cdf)
    mean = expected_hitting_time(ir.generator, pi0, targets)
    return PassageSolution(times=times, cdf=cdf, mean=mean)


def _passage_targets(ir: MarkovIR, targets) -> list[int]:
    targets = [int(s) for s in targets]
    if not targets:
        raise BackendError("passage-time target set is empty")
    return targets


def _passage_uniformization(ir: MarkovIR, *, targets, times, pi0=None,
                            epsilon=1e-12):
    targets = _passage_targets(ir, targets)
    p0 = _resolve_pi0(ir, pi0)
    times = np.asarray(times, dtype=np.float64)
    cdf = absorption_cdf(ir.generator, p0, targets, times, epsilon)
    return _finish_passage(ir, p0, targets, times, cdf)


def _passage_expm(ir: MarkovIR, *, targets, times, pi0=None, epsilon=1e-12):
    _check_dense_limit(ir)
    targets = _passage_targets(ir, targets)
    p0 = _resolve_pi0(ir, pi0)
    times = np.asarray(times, dtype=np.float64)
    Q = ir.generator.toarray()
    Q[targets, :] = 0.0
    cdf = np.empty(times.size)
    for i, t in enumerate(times):
        dist = p0 @ scipy.linalg.expm(Q * t)
        cdf[i] = dist[targets].sum()
    return _finish_passage(ir, p0, targets, times, cdf)


register_backend(
    "passage",
    "uniformization",
    _passage_uniformization,
    accepts=(MarkovIR,),
    default=True,
)
register_backend(
    "passage", "expm", _passage_expm, accepts=(MarkovIR,), aliases=("dense",)
)

# The dense expm backends bail out to uniformization, whose adaptive
# truncation handles stiff generators the matrix exponential cannot.
register_fallback_chain("transient", ("expm", "uniformization"))
register_fallback_chain("passage", ("expm", "uniformization"))
