"""Closed-form hypoexponential distributions.

A machine that executes its mapped applications one after another, each
stage exponentially distributed, has a hypoexponential finishing time.
These closed forms provide an analytic oracle for the passage-time
engine (ablation D2): the uniformization-based CDF of the sequential
machine model must agree with :func:`hypoexp_cdf` to solver tolerance.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["hypoexp_cdf", "hypoexp_mean", "hypoexp_var"]


def _check_rates(rates: Sequence[float]) -> np.ndarray:
    r = np.asarray(rates, dtype=np.float64)
    if r.ndim != 1 or r.size == 0:
        raise ValueError("rates must be a non-empty 1-D sequence")
    if (r <= 0).any():
        raise ValueError("all stage rates must be strictly positive")
    return r


def hypoexp_cdf(rates: Sequence[float], t: float | np.ndarray) -> np.ndarray:
    """CDF of a sum of independent exponentials with the given rates.

    For distinct rates the classical partial-fraction form is used::

        F(t) = 1 - sum_i  w_i * exp(-r_i t),
        w_i = prod_{j != i} r_j / (r_j - r_i)

    With (nearly) repeated rates that form is numerically explosive.
    The fallback is uniformization of the phase-type chain — *not* a
    dense ``expm``: SciPy's ``expm`` silently loses accuracy on the
    nearly-defective bidiagonal stage matrix this distribution produces
    (observed: off-diagonal 0.094 where the true value is 0.073 for two
    rates one ULP apart), while uniformization only ever adds positive
    terms and is stable for any rate multiset.
    """
    r = _check_rates(rates)
    t_arr = np.atleast_1d(np.asarray(t, dtype=np.float64))
    if (t_arr < 0).any():
        raise ValueError("t must be non-negative")
    n = r.size
    # Detect near-coincident rates: the partial-fraction weights blow up
    # like 1/(r_j - r_i), so require decent separation.
    sep = np.abs(r[:, None] - r[None, :])
    np.fill_diagonal(sep, np.inf)
    if n == 1:
        out = 1.0 - np.exp(-r[0] * t_arr)
    elif sep.min() > 1e-6 * r.max():
        w = np.empty(n)
        for i in range(n):
            others = np.delete(r, i)
            w[i] = np.prod(others / (others - r[i]))
        out = 1.0 - np.exp(-np.outer(t_arr, r)) @ w
    else:
        # Phase-type chain: stage i -> stage i+1 at rate r[i]; the last
        # stage feeds the absorbing "done" state.  CDF = absorption mass.
        import scipy.sparse as sp

        from repro.numerics.transient import absorption_cdf

        rows = np.arange(n)
        Q = sp.coo_matrix(
            (np.concatenate([r, -r]), (np.concatenate([rows, rows]),
                                       np.concatenate([rows + 1, rows]))),
            shape=(n + 1, n + 1),
        ).tocsr()
        pi0 = np.zeros(n + 1)
        pi0[0] = 1.0
        out = absorption_cdf(Q, pi0, [n], t_arr)
    out = np.clip(out, 0.0, 1.0)
    return out if np.ndim(t) else out[0]


def hypoexp_mean(rates: Sequence[float]) -> float:
    """Mean of the hypoexponential: sum of stage means."""
    r = _check_rates(rates)
    return float(np.sum(1.0 / r))


def hypoexp_var(rates: Sequence[float]) -> float:
    """Variance of the hypoexponential: sum of stage variances."""
    r = _check_rates(rates)
    return float(np.sum(1.0 / r**2))
