"""Discrete-time Markov chain helpers used by uniformization."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError

__all__ = ["uniformized_dtmc", "dtmc_stationary"]


def uniformized_dtmc(Q: sp.spmatrix, lam: float | None = None) -> tuple[sp.csr_matrix, float]:
    """Uniformize the CTMC generator ``Q`` into a DTMC transition matrix.

    Returns ``(P, lam)`` with ``P = I + Q / lam`` where ``lam`` defaults
    to slightly above the largest exit rate so every diagonal entry of
    ``P`` stays strictly positive (which makes downstream power methods
    aperiodic).
    """
    Q = sp.csr_matrix(Q, dtype=np.float64)
    max_exit = float((-Q.diagonal()).max()) if Q.shape[0] else 0.0
    if lam is None:
        lam = max_exit * 1.02 if max_exit > 0 else 1.0
    elif lam < max_exit:
        raise ValueError(
            f"uniformization rate {lam} is below the maximum exit rate {max_exit}"
        )
    P = sp.eye(Q.shape[0], format="csr") + Q.multiply(1.0 / lam)
    return P.tocsr(), lam


def dtmc_stationary(P: sp.spmatrix, tol: float = 1e-12, maxiter: int = 200_000) -> np.ndarray:
    """Stationary distribution of a row-stochastic matrix by power iteration."""
    P = sp.csr_matrix(P, dtype=np.float64)
    n = P.shape[0]
    PT = P.transpose().tocsr()
    pi = np.full(n, 1.0 / n)
    for _ in range(maxiter):
        nxt = PT @ pi
        nxt /= nxt.sum()
        if np.abs(nxt - pi).max() < tol:
            return nxt
        pi = nxt
    raise ConvergenceError(f"DTMC power iteration failed to reach {tol} in {maxiter} steps")
