"""Steady-state distributions of finite CTMCs.

The steady-state (equilibrium) distribution ``pi`` of an irreducible
CTMC with generator ``Q`` satisfies::

    pi @ Q = 0,    sum(pi) = 1,    pi >= 0

Three methods are provided, matching the ablation D1 in DESIGN.md:

``direct``
    Replace one balance equation by the normalization constraint and
    solve the resulting nonsingular sparse system with ``splu``.  The
    workhorse for the state-space sizes PEPA's explicit engine reaches.
``gmres``
    Same replaced system solved iteratively with ILU-preconditioned
    GMRES.  Scales to larger sparse systems at some accuracy cost.
``power``
    Power iteration on the uniformized DTMC ``P = I + Q/lambda``.
    Slowest but allocation-free per step and embarrassingly simple; it
    is the method of last resort for ill-conditioned generators.

All methods accept the generator in the "row" convention used across
this library: ``Q[i, j]`` (``i != j``) is the rate from state ``i`` to
state ``j`` and rows sum to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.engine import faults
from repro.engine.cache import cached
from repro.engine.metrics import get_registry
from repro.errors import ConvergenceError, SingularGeneratorError

__all__ = ["steady_state", "SteadyStateResult", "validate_generator"]

_METHODS = ("direct", "dense", "gmres", "power")

#: The dense LAPACK solver materializes the full matrix; refuse sizes
#: where that silently burns memory for no accuracy gain.
_DENSE_LIMIT = 2000


@dataclass(frozen=True)
class SteadyStateResult:
    """Steady-state solve outcome.

    Attributes
    ----------
    pi:
        The stationary probability vector (sums to 1).
    method:
        Which back-end produced it.
    residual:
        Max-norm of ``pi @ Q`` — a direct measure of solution quality.
    iterations:
        Iteration count for iterative methods, 0 for the direct solver.
    meta:
        Execution metadata filled by :func:`steady_state`: ``cache``
        (``"hit"``/``"miss"``/``"off"``/``"uncacheable"``), ``method``
        and ``n_states``.  Excluded from equality and content hashing —
        volatile execution facts (cache status, manifests) must not
        make two numerically identical results digest differently.
    """

    pi: np.ndarray
    method: str
    residual: float
    iterations: int = 0
    meta: dict = field(default_factory=dict, compare=False)

    def __getitem__(self, i: int) -> float:
        return float(self.pi[i])


def validate_generator(Q: sp.spmatrix, atol: float = 1e-8) -> sp.csr_matrix:
    """Check that ``Q`` is a square generator (rows sum to ~0, off-diagonal
    entries non-negative) and return it as CSR.

    Raises
    ------
    SingularGeneratorError
        If the matrix is not square or violates generator structure.
    """
    Q = sp.csr_matrix(Q, dtype=np.float64)
    n, m = Q.shape
    if n != m:
        raise SingularGeneratorError(f"generator must be square, got {n}x{m}")
    if n == 0:
        raise SingularGeneratorError("generator is empty")
    row_sums = np.asarray(Q.sum(axis=1)).ravel()
    scale = max(1.0, float(np.abs(Q.data).max()) if Q.nnz else 1.0)
    if np.abs(row_sums).max() > atol * scale:
        worst = int(np.abs(row_sums).argmax())
        raise SingularGeneratorError(
            f"row {worst} of generator sums to {row_sums[worst]:.3e}, not 0"
        )
    coo = Q.tocoo()
    off = coo.row != coo.col
    if coo.data[off].size and coo.data[off].min() < -atol * scale:
        raise SingularGeneratorError("negative off-diagonal rate in generator")
    return Q


def _replaced_system(Q: sp.csr_matrix) -> tuple[sp.csc_matrix, np.ndarray]:
    """Build ``A x = b`` where ``A`` is ``Q^T`` with its last row replaced by
    ones (normalization) and ``b`` is the matching unit vector.

    The replacement is direct CSR row surgery on ``Q^T``: keep the raw
    ``data``/``indices`` of rows ``0 .. n-2`` and append a dense row of
    ones, avoiding the former LIL round-trip (which reallocated every
    row into Python lists just to rewrite one of them).
    """
    n = Q.shape[0]
    Qt = Q.transpose().tocsr()
    cut = Qt.indptr[n - 1]  # end of row n-2 == start of the replaced row
    data = np.concatenate([Qt.data[:cut], np.ones(n)])
    indices = np.concatenate(
        [Qt.indices[:cut], np.arange(n, dtype=Qt.indices.dtype)]
    )
    indptr = np.concatenate([Qt.indptr[:n], [cut + n]]).astype(Qt.indptr.dtype)
    A = sp.csr_matrix((data, indices, indptr), shape=(n, n))
    b = np.zeros(n)
    b[n - 1] = 1.0
    return A.tocsc(), b


def _solve_direct(Q: sp.csr_matrix) -> tuple[np.ndarray, int]:
    A, b = _replaced_system(Q)
    try:
        lu = spla.splu(A)
        pi = lu.solve(b)
    except RuntimeError as exc:  # splu signals singularity this way
        raise SingularGeneratorError(f"direct solve failed: {exc}") from exc
    return pi, 0


def _solve_dense(Q: sp.csr_matrix) -> tuple[np.ndarray, int]:
    """LAPACK solve of the replaced system on the densified matrix.

    The ablation baseline for the sparse-LU workhorse: identical
    construction, dense factorization.  Limited to small systems.
    """
    n = Q.shape[0]
    if n > _DENSE_LIMIT:
        raise SingularGeneratorError(
            f"dense steady-state solve is limited to {_DENSE_LIMIT} states "
            f"(got {n}); use the sparse direct method"
        )
    A, b = _replaced_system(Q)
    try:
        pi = scipy.linalg.solve(A.toarray(), b)
    except scipy.linalg.LinAlgError as exc:
        raise SingularGeneratorError(f"dense solve failed: {exc}") from exc
    return pi, 0


def _solve_gmres(Q: sp.csr_matrix, tol: float, maxiter: int) -> tuple[np.ndarray, int]:
    A, b = _replaced_system(Q)
    n = A.shape[0]
    try:
        ilu = spla.spilu(A.tocsc(), drop_tol=1e-6, fill_factor=20)
        M = spla.LinearOperator((n, n), matvec=ilu.solve)
    except RuntimeError:
        M = None  # fall back to unpreconditioned GMRES
    iters = 0

    def _count(_):
        nonlocal iters
        iters += 1

    x, info = spla.gmres(A, b, rtol=tol, atol=0.0, maxiter=maxiter, M=M, callback=_count,
                         callback_type="pr_norm")
    if info != 0:
        raise ConvergenceError(f"GMRES did not converge (info={info}) after {iters} iterations")
    # Preconditioned GMRES converges on the *preconditioned* residual, so
    # info == 0 does not bound |A x - b|: a poor ILU factorization can
    # report success on an answer that is wrong in the original system.
    # Measure the true residual and treat silent non-convergence exactly
    # like reported non-convergence — recoverable by the fallback chain.
    scale = max(1.0, float(np.abs(A.data).max()) if A.nnz else 1.0)
    true_res = float(np.abs(A @ x - b).max())
    if not np.isfinite(true_res) or true_res > max(tol, 1e-10) * 1e3 * scale:
        raise ConvergenceError(
            f"GMRES reported convergence but the true residual |Ax-b| = "
            f"{true_res:.3e} exceeds tolerance after {iters} iterations"
        )
    return x, iters


def _solve_power(Q: sp.csr_matrix, tol: float, maxiter: int) -> tuple[np.ndarray, int]:
    n = Q.shape[0]
    diag = -Q.diagonal()
    lam = float(diag.max()) * 1.02 + 1e-12
    # P = I + Q/lam, iterated from the uniform distribution.
    P = sp.eye(n, format="csr") + Q.multiply(1.0 / lam)
    PT = P.transpose().tocsr()
    pi = np.full(n, 1.0 / n)
    for k in range(1, maxiter + 1):
        nxt = PT @ pi
        s = nxt.sum()
        if s <= 0:
            raise SingularGeneratorError("power iteration lost all probability mass")
        nxt /= s
        delta = np.abs(nxt - pi).max()
        pi = nxt
        if delta < tol:
            return pi, k
    raise ConvergenceError(
        f"power iteration did not converge below {tol} in {maxiter} iterations"
    )


def steady_state(
    Q: sp.spmatrix,
    method: str = "direct",
    tol: float = 1e-10,
    maxiter: int = 100_000,
    check: bool = True,
) -> SteadyStateResult:
    """Compute the steady-state distribution of the CTMC generator ``Q``.

    Parameters
    ----------
    Q:
        Sparse ``n x n`` generator, row convention (rows sum to zero).
    method:
        ``"direct"`` (sparse LU), ``"dense"`` (LAPACK, small systems),
        ``"gmres"`` or ``"power"``.
    tol:
        Convergence tolerance for the iterative methods and the residual
        acceptance threshold for all methods.
    maxiter:
        Iteration budget for the iterative methods.
    check:
        Validate generator structure first (disable in hot loops where
        the caller already guarantees it).

    Returns
    -------
    SteadyStateResult

    Raises
    ------
    SingularGeneratorError
        If the chain is reducible/absorbing so no unique solution exists.
    ConvergenceError
        If an iterative method exhausts ``maxiter``.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")
    Q = validate_generator(Q) if check else sp.csr_matrix(Q, dtype=np.float64)
    n = Q.shape[0]
    if n == 1:
        return SteadyStateResult(pi=np.array([1.0]), method=method, residual=0.0)
    # A state with no outgoing rate is absorbing: the steady state would be
    # degenerate and almost always signals a modelling error upstream.
    diag = -Q.diagonal()
    if (diag <= 0).any():
        dead = int(np.argmin(diag))
        raise SingularGeneratorError(
            f"state {dead} is absorbing (no outgoing transitions); "
            "the CTMC has no unique equilibrium"
        )
    with get_registry().timer("steady_state") as gauges:
        result, status = cached(
            "steady_state",
            (Q, method, tol, maxiter),
            lambda: _solve_and_check(Q, method, tol, maxiter, diag),
        )
        gauges["n_states"] = n
        gauges["iterations"] = result.iterations
    if faults.should_fire("solver_silent_garbage", backend=method) is not None:
        # Injected *after* the cache block so the garbage never becomes a
        # cached entry.  The vector is well-normalized and the reported
        # residual is confidently tiny — the exact lie an exit-code check
        # believes and the trust layer's recomputed residual does not.
        rigged = np.linspace(1.0, 2.0, n)
        rigged /= rigged.sum()
        result = SteadyStateResult(
            pi=rigged, method=method, residual=tol / 10.0,
            iterations=result.iterations,
        )
    result.meta.update(cache=status, method=method, n_states=n)
    return result


def _solve_and_check(
    Q: sp.csr_matrix, method: str, tol: float, maxiter: int, diag: np.ndarray
) -> SteadyStateResult:
    """Dispatch to the selected back-end and validate the solution."""
    if faults.should_fire("solver_nonconverge", backend=method) is not None:
        raise ConvergenceError(f"injected non-convergence for method {method!r}")
    if method == "direct":
        pi, iters = _solve_direct(Q)
    elif method == "dense":
        pi, iters = _solve_dense(Q)
    elif method == "gmres":
        pi, iters = _solve_gmres(Q, tol, maxiter)
    else:
        pi, iters = _solve_power(Q, tol, maxiter)
    # Clean tiny negative round-off and renormalize.
    if pi.min() < -1e-6:
        raise SingularGeneratorError(
            f"solution has significantly negative entry {pi.min():.3e}: chain "
            "is likely reducible"
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        raise SingularGeneratorError("steady-state solve produced a non-normalizable vector")
    pi /= total
    residual = float(np.abs(pi @ Q).max())
    rate_scale = max(1.0, float(diag.max()))
    if residual > 1e-6 * rate_scale:
        raise SingularGeneratorError(
            f"steady-state residual {residual:.3e} too large; generator may be reducible"
        )
    return SteadyStateResult(pi=pi, method=method, residual=residual, iterations=iters)
