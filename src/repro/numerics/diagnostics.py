"""Conditioning and convergence diagnostics for the numerical back-ends.

The trust layer (:mod:`repro.ir.guards`) attaches a small dictionary of
quality measurements to every registry solve: residual norms, condition
estimates, uniformization truncation mass, conservation defects.  This
module owns the measurements themselves — each is a pure function of
the generator / stoichiometry / result arrays, cheap relative to the
solve it describes, and safe on degenerate inputs (it *reports*, never
raises; deciding whether a number is acceptable is the sentinels' job).

Everything here sits below :mod:`repro.ir` in the import layering:
``ir -> numerics`` only.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.numerics.poisson import poisson_truncation_point

__all__ = [
    "CONDITION_ESTIMATE_LIMIT",
    "steady_residual",
    "condition_estimate",
    "simplex_defect",
    "monotonicity_defect",
    "truncation_diagnostics",
    "conservation_laws",
    "conservation_defect",
]

#: Condition estimation factorizes the replaced steady-state system; skip
#: it above this state count (the estimate would cost as much as a solve).
CONDITION_ESTIMATE_LIMIT = 5000


def steady_residual(Q: sp.spmatrix, pi: np.ndarray) -> float:
    """Max-norm residual ``‖pi @ Q‖∞`` of a claimed equilibrium vector.

    This is the one number that cannot lie: whatever a solver reports
    about its own convergence, the true defect of ``pi @ Q = 0`` is a
    single sparse mat-vec away.
    """
    pi = np.asarray(pi, dtype=np.float64)
    r = pi @ sp.csr_matrix(Q, dtype=np.float64)
    r = np.asarray(r).ravel()
    return float(np.abs(r).max()) if r.size else 0.0


def condition_estimate(Q: sp.spmatrix) -> float | None:
    """1-norm condition estimate of the replaced steady-state system.

    ``kappa_1(A) ~ onenormest(A) * onenormest(A^-1)`` where ``A`` is the
    normalization-replaced transpose actually factorized by the direct
    solvers — the matrix whose conditioning governs how many digits of
    the solve survive.  ``A^-1`` is never formed; its 1-norm is
    estimated through an LU solve operator (Higham & Tisseur's block
    algorithm, a handful of solves).

    Returns ``None`` when the system is too large
    (:data:`CONDITION_ESTIMATE_LIMIT`), singular, or tiny (order < 2 —
    ``onenormest`` needs a 2x2 or larger operator).
    """
    from repro.numerics.steady import _replaced_system

    Q = sp.csr_matrix(Q, dtype=np.float64)
    n = Q.shape[0]
    if n < 2 or n > CONDITION_ESTIMATE_LIMIT:
        return None
    A, _b = _replaced_system(Q)
    try:
        lu = spla.splu(A)
        # onenormest walks both A^-1 and its adjoint, so the operator
        # needs rmatvec (a transposed LU solve) as well as matvec.
        inv_op = spla.LinearOperator(
            (n, n),
            matvec=lu.solve,
            rmatvec=lambda v: lu.solve(np.asarray(v, dtype=np.float64).ravel(), trans="T"),
            dtype=np.float64,
        )
        norm_a = spla.onenormest(A)
        norm_ainv = spla.onenormest(inv_op)
    except (RuntimeError, ValueError):
        return None
    kappa = float(norm_a * norm_ainv)
    return kappa if np.isfinite(kappa) else None


def simplex_defect(pi: np.ndarray) -> dict:
    """How far a claimed probability vector sits off the simplex.

    Returns ``{"min": most negative entry (0 if none), "mass_error":
    |sum - 1|, "finite": all entries finite}``.
    """
    pi = np.asarray(pi, dtype=np.float64)
    finite = bool(np.isfinite(pi).all())
    if not finite or pi.size == 0:
        return {"min": float("nan"), "mass_error": float("nan"), "finite": finite}
    return {
        "min": float(min(pi.min(), 0.0)),
        "mass_error": float(abs(pi.sum() - 1.0)),
        "finite": True,
    }


def monotonicity_defect(cdf: np.ndarray) -> float:
    """Largest decrease between consecutive CDF samples (0 if monotone)."""
    cdf = np.asarray(cdf, dtype=np.float64)
    if cdf.size < 2:
        return 0.0
    drops = -np.diff(cdf)
    worst = float(drops.max())
    return worst if worst > 0.0 else 0.0


def truncation_diagnostics(
    Q: sp.spmatrix, t_max: float, epsilon: float = 1e-12
) -> dict:
    """Uniformization truncation summary for a horizon ``t_max``.

    Reports the uniformization rate ``lambda``, the Poisson mean
    ``lambda * t_max``, the truncation point ``K`` actually used by the
    shared weight computation, and the mass bound ``epsilon`` the
    truncation guarantees (weights are renormalized, so the *retained*
    error is at most ``epsilon``).
    """
    Q = sp.csr_matrix(Q, dtype=np.float64)
    lam = float(np.abs(Q.diagonal()).max()) if Q.shape[0] else 0.0
    m = lam * max(float(t_max), 0.0)
    k = poisson_truncation_point(m, epsilon) if m > 0 else 0
    return {
        "uniformization_rate": lam,
        "poisson_mean": m,
        "truncation_k": int(k),
        "truncation_mass": float(epsilon),
    }


def conservation_laws(N: np.ndarray, atol: float = 1e-10) -> np.ndarray:
    """Orthonormal basis of the left null space of a stoichiometry matrix.

    Rows ``w`` satisfy ``w @ N = 0``: the linear combinations
    ``w @ x(t)`` every trajectory of the network — stochastic or fluid —
    must hold constant.  Shape ``(n_laws, n_species)``; empty when the
    network conserves nothing (or ``N`` is empty).
    """
    N = np.asarray(N, dtype=np.float64)
    if N.size == 0:
        return np.empty((0, N.shape[0] if N.ndim == 2 else 0))
    import scipy.linalg

    W = scipy.linalg.null_space(N.T, rcond=atol)
    return W.T


def conservation_defect(
    W: np.ndarray, counts: np.ndarray, reference: np.ndarray
) -> float:
    """Worst drift of the conserved sums ``W @ x`` along a trajectory.

    ``counts`` has shape ``(n_times, n_species)``; ``reference`` is the
    state the sums are measured against (normally the initial state).
    Returns 0.0 when there are no conservation laws.
    """
    if W.size == 0:
        return 0.0
    expected = W @ np.asarray(reference, dtype=np.float64)
    along = np.asarray(counts, dtype=np.float64) @ W.T
    if along.size == 0:
        return 0.0
    drift = np.abs(along - expected[None, :])
    return float(drift.max())
