"""Truncated Poisson weights for uniformization.

Uniformization expresses the matrix exponential of a CTMC generator as a
Poisson-weighted sum of powers of the uniformized DTMC.  The weights
``w_k = e^{-m} m^k / k!`` underflow badly for large ``m`` when computed
naively, so we follow the standard Fox–Glynn approach of working in log
space and truncating both tails once the retained mass reaches the
requested accuracy.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["poisson_weights", "poisson_truncation_point"]


def poisson_truncation_point(m: float, epsilon: float = 1e-12) -> int:
    """Smallest ``K`` such that the Poisson(``m``) mass above ``K`` is below
    ``epsilon``.

    Uses the normal tail bound ``K ~ m + c*sqrt(m)`` as a starting guess
    and then walks outward on the exact log-pmf, which is cheap and
    avoids the piecewise constants of the original Fox–Glynn paper.
    """
    if m < 0:
        raise ValueError(f"Poisson rate must be non-negative, got {m}")
    if m == 0.0:
        return 0
    log_eps = math.log(epsilon)

    def below_epsilon(k: int) -> bool:
        # Tail bound  pmf(k) * (k+1)/(k+1-m): for k+1 > m the Poisson
        # tail is bounded by a geometric series with ratio m/(k+1).
        ratio = m / (k + 1)
        if ratio >= 1.0:
            return False
        log_pmf = k * math.log(m) - m - math.lgamma(k + 1)
        return log_pmf + math.log(1.0 / (1.0 - ratio)) < log_eps

    k = int(m + 8.0 * math.sqrt(m) + 10.0)
    # Walk forward until the tail bound drops below epsilon...
    while not below_epsilon(k):
        k += max(1, int(0.05 * k))
    # ...then bisect back to the smallest satisfying K.  The bound is
    # monotone decreasing for k >= m, and at k = floor(m) the tail is
    # ~0.5, so [floor(m), k] brackets the threshold; the old forward
    # walk alone returned up to 5% above the minimum (and the starting
    # guess often oversatisfies epsilon outright).
    lo = int(m)
    while k - lo > 1:
        mid = (k + lo) // 2
        if below_epsilon(mid):
            k = mid
        else:
            lo = mid
    # For very loose epsilon even floor(m) can satisfy the bound; the
    # bisection bracket assumed it does not, so finish with an exact
    # walk-down (a no-op for the tight epsilons uniformization uses).
    while k > 0 and below_epsilon(k - 1):
        k -= 1
    return k


def poisson_weights(m: float, epsilon: float = 1e-12) -> tuple[int, np.ndarray]:
    """Return ``(k_lo, w)`` with ``w[i] ~= Poisson(m).pmf(k_lo + i)``.

    The weights cover at least ``1 - epsilon`` of the distribution's
    mass and are renormalized to sum to exactly 1 so that downstream
    uniformization preserves probability mass.

    Parameters
    ----------
    m:
        Poisson rate (``lambda * t`` in uniformization), must be >= 0.
    epsilon:
        Maximum probability mass allowed to be truncated away (before
        renormalization).
    """
    if m < 0:
        raise ValueError(f"Poisson rate must be non-negative, got {m}")
    if m == 0.0:
        return 0, np.array([1.0])
    k_hi = poisson_truncation_point(m, epsilon / 2.0)
    if m > 25.0:
        k_lo = max(0, int(m - 8.0 * math.sqrt(m) - 10.0))
        # Walk the lower truncation point down until the lower tail is
        # small enough (lower tail bounded by pmf(k) * (k+1)/(m) geometric).
        while k_lo > 0:
            log_pmf = k_lo * math.log(m) - m - math.lgamma(k_lo + 1)
            ratio = k_lo / m
            log_tail = log_pmf + math.log(1.0 / (1.0 - ratio)) if ratio < 1 else 0.0
            if log_tail < math.log(epsilon / 2.0):
                break
            k_lo = max(0, k_lo - max(1, int(0.05 * k_lo)))
    else:
        k_lo = 0
    ks = np.arange(k_lo, k_hi + 1, dtype=np.float64)
    log_w = ks * math.log(m) - m - np.array([math.lgamma(k + 1) for k in ks])
    # Shift by the max before exponentiating for numerical headroom.
    log_w -= log_w.max()
    w = np.exp(log_w)
    w /= w.sum()
    return k_lo, w
