"""Numerical back-ends shared by the PEPA, Bio-PEPA and GPEPA engines.

The submodules keep a strict separation between *model* concerns (owned
by the process-algebra packages) and *matrix* concerns:

``poisson``
    Stable truncated Poisson weight computation (Fox–Glynn style) used
    by uniformization.
``steady``
    Steady-state distribution of an irreducible CTMC from its sparse
    generator: direct sparse LU, GMRES, and power iteration on the
    uniformized DTMC.
``transient``
    Transient distributions and absorption probabilities via
    uniformization (vectorized over a whole time grid).
``dtmc``
    Uniformization and stationary analysis of discrete-time chains.
``hypoexp``
    Closed-form hypoexponential (sum of exponentials) distributions,
    used as an analytic cross-check for the passage-time engine.
``ode``
    Fixed-grid ODE integration helpers (SciPy ``solve_ivp`` wrapper and
    a self-contained RK4 fallback).
``quantile``
    The shared generalized-inverse quantile of a sampled CDF, used by
    every result type carrying a ``(times, cdf)`` curve.
"""

from repro.numerics.steady import steady_state, SteadyStateResult
from repro.numerics.transient import (
    transient_distribution,
    absorption_cdf,
    expected_hitting_time,
)
from repro.numerics.poisson import poisson_weights
from repro.numerics.hypoexp import hypoexp_cdf, hypoexp_mean, hypoexp_var
from repro.numerics.dtmc import uniformized_dtmc, dtmc_stationary
from repro.numerics.ode import integrate_ode, rk4_fixed_step
from repro.numerics.quantile import cdf_quantile

__all__ = [
    "steady_state",
    "SteadyStateResult",
    "transient_distribution",
    "absorption_cdf",
    "expected_hitting_time",
    "poisson_weights",
    "hypoexp_cdf",
    "hypoexp_mean",
    "hypoexp_var",
    "uniformized_dtmc",
    "dtmc_stationary",
    "integrate_ode",
    "rk4_fixed_step",
    "cdf_quantile",
]
