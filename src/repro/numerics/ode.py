"""Fixed-grid ODE integration helpers for the fluid and Bio-PEPA engines.

Two back-ends, per ablation D5's need to separate model error from
integrator error:

* :func:`integrate_ode` — SciPy ``solve_ivp`` (adaptive LSODA/RK45)
  evaluated on a caller-supplied output grid; the production path.
* :func:`rk4_fixed_step` — a self-contained classical RK4 with a fixed
  internal step, useful as an independent cross-check and in
  environments where deterministic step sequences matter for
  reproducibility comparisons (bit-identical trajectories).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np
from scipy.integrate import solve_ivp

from repro.errors import NumericsError

__all__ = ["integrate_ode", "rk4_fixed_step"]

RHS = Callable[[float, np.ndarray], np.ndarray]


def _grid(times: Sequence[float]) -> np.ndarray:
    t = np.asarray(times, dtype=np.float64)
    if t.ndim != 1 or t.size < 2:
        raise NumericsError("time grid must contain at least two points")
    if (np.diff(t) <= 0).any():
        raise NumericsError("time grid must be strictly increasing")
    return t


def integrate_ode(
    rhs: RHS,
    y0: Sequence[float],
    times: Sequence[float],
    method: str = "LSODA",
    rtol: float = 1e-8,
    atol: float = 1e-10,
    stats: dict | None = None,
) -> np.ndarray:
    """Integrate ``dy/dt = rhs(t, y)`` and sample on ``times``.

    Returns an array of shape ``(len(times), len(y0))``; row 0 is ``y0``.
    When ``stats`` is given, the integrator's work counters (right-hand
    side / Jacobian evaluations, LU decompositions, exit status) are
    written into it — even on failure, so callers can report how much
    effort preceded the error.
    """
    t = _grid(times)
    y0 = np.asarray(y0, dtype=np.float64)
    sol = solve_ivp(
        rhs,
        (t[0], t[-1]),
        y0,
        method=method,
        t_eval=t,
        rtol=rtol,
        atol=atol,
        dense_output=False,
    )
    if stats is not None:
        stats.update(
            ode_method=method,
            ode_nfev=int(sol.nfev),
            ode_njev=int(sol.njev),
            ode_nlu=int(sol.nlu),
            ode_status=int(sol.status),
        )
    if not sol.success:
        raise NumericsError(f"ODE integration failed: {sol.message}")
    return sol.y.T.copy()


def rk4_fixed_step(
    rhs: RHS,
    y0: Sequence[float],
    times: Sequence[float],
    substeps: int = 16,
) -> np.ndarray:
    """Classical fourth-order Runge–Kutta with ``substeps`` internal steps
    between consecutive output points.

    Fully deterministic: the step sequence depends only on the grid, so
    two runs (native vs containerized) produce bit-identical output —
    the property the paper's validation methodology relies on.
    """
    if substeps < 1:
        raise NumericsError("substeps must be >= 1")
    t = _grid(times)
    y = np.asarray(y0, dtype=np.float64).copy()
    out = np.empty((t.size, y.size))
    out[0] = y
    for i in range(t.size - 1):
        h = (t[i + 1] - t[i]) / substeps
        tk = t[i]
        for _ in range(substeps):
            k1 = rhs(tk, y)
            k2 = rhs(tk + 0.5 * h, y + 0.5 * h * k1)
            k3 = rhs(tk + 0.5 * h, y + 0.5 * h * k2)
            k4 = rhs(tk + h, y + h * k3)
            y = y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
            tk += h
        out[i + 1] = y
    return out
