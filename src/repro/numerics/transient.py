"""Transient CTMC analysis via uniformization.

Uniformization computes ``pi(t) = pi0 @ expm(Q t)`` without ever forming
a matrix exponential::

    pi(t) = sum_k  Poisson(lam*t; k) * pi0 @ P^k,   P = I + Q/lam

The vector sequence ``pi0 @ P^k`` is shared across every requested time
point, so evaluating a whole time grid costs one sparse mat-vec sweep up
to the largest truncation point — this is what makes regenerating an
entire CDF curve (Figs. 3 and 4 of the paper) cheap.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import NumericsError
from repro.numerics.dtmc import uniformized_dtmc
from repro.numerics.poisson import poisson_weights, poisson_truncation_point

__all__ = [
    "transient_distribution",
    "backward_transient",
    "absorption_cdf",
    "expected_hitting_time",
]


def _as_distribution(pi0: Sequence[float] | np.ndarray, n: int) -> np.ndarray:
    pi0 = np.asarray(pi0, dtype=np.float64)
    if pi0.shape != (n,):
        raise NumericsError(f"initial distribution has shape {pi0.shape}, expected ({n},)")
    if pi0.min() < -1e-12 or abs(pi0.sum() - 1.0) > 1e-9:
        raise NumericsError("initial distribution must be non-negative and sum to 1")
    return np.clip(pi0, 0.0, None)


def transient_distribution(
    Q: sp.spmatrix,
    pi0: Sequence[float] | np.ndarray,
    times: Sequence[float] | np.ndarray,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """Transient state distributions at each requested time.

    Parameters
    ----------
    Q:
        Sparse generator (rows sum to zero; absorbing rows of all zeros
        are allowed — this is how passage-time analysis uses it).
    pi0:
        Initial distribution over states.
    times:
        Non-negative time points (any order; output matches input order).
    epsilon:
        Poisson truncation mass.

    Returns
    -------
    ndarray of shape ``(len(times), n)`` — row ``i`` is ``pi(times[i])``.
    """
    Q = sp.csr_matrix(Q, dtype=np.float64)
    n = Q.shape[0]
    pi0 = _as_distribution(pi0, n)
    times = np.asarray(times, dtype=np.float64)
    if times.size == 0:
        return np.empty((0, n))
    if times.min() < 0:
        raise NumericsError("times must be non-negative")
    P, lam = uniformized_dtmc(Q)
    PT = P.transpose().tocsr()
    t_max = float(times.max())
    k_max = poisson_truncation_point(lam * t_max, epsilon) if t_max > 0 else 0

    # Per-time Poisson weights, dense over 0..k_max (weights outside each
    # time's own truncation window are identically renormalized-zero).
    W = np.zeros((times.size, k_max + 1))
    for i, t in enumerate(times):
        if t == 0.0:
            W[i, 0] = 1.0
            continue
        k_lo, w = poisson_weights(lam * t, epsilon)
        hi = min(k_lo + w.size, k_max + 1)
        W[i, k_lo:hi] = w[: hi - k_lo]

    out = np.zeros((times.size, n))
    v = pi0.copy()
    for k in range(k_max + 1):
        col = W[:, k]
        if col.any():
            out += np.outer(col, v)
        if k < k_max:
            v = PT @ v
    # Renormalize rows: truncation plus round-off can shave ~epsilon mass.
    sums = out.sum(axis=1, keepdims=True)
    np.divide(out, sums, out=out, where=sums > 0)
    return out


def backward_transient(
    Q: sp.spmatrix,
    reward: Sequence[float] | np.ndarray,
    t: float,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """Backward uniformization: ``u = expm(Q t) @ reward``.

    ``u[s]`` is the expected value of ``reward`` over the state occupied
    at time ``t`` *starting from* ``s`` — the all-initial-states dual of
    :func:`transient_distribution`, and the primitive CSL model checking
    needs (one sweep yields the probability for every start state).
    """
    Q = sp.csr_matrix(Q, dtype=np.float64)
    n = Q.shape[0]
    z = np.asarray(reward, dtype=np.float64)
    if z.shape != (n,):
        raise NumericsError(f"reward vector has shape {z.shape}, expected ({n},)")
    if t < 0:
        raise NumericsError("time must be non-negative")
    if t == 0.0:
        return z.copy()
    P, lam = uniformized_dtmc(Q)
    k_lo, w = poisson_weights(lam * t, epsilon)
    out = np.zeros(n)
    v = z.copy()
    k = 0
    k_hi = k_lo + w.size - 1
    while k <= k_hi:
        if k >= k_lo:
            out += w[k - k_lo] * v
        if k < k_hi:
            v = P @ v
        k += 1
    return out


def absorption_cdf(
    Q: sp.spmatrix,
    pi0: Sequence[float] | np.ndarray,
    target: Sequence[int],
    times: Sequence[float] | np.ndarray,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """CDF of the first-passage time into ``target`` states.

    The target states are made absorbing (their outgoing rows zeroed),
    after which ``P(T <= t)`` equals the transient probability of being
    in any target state at time ``t``.

    Returns an array aligned with ``times``.
    """
    Q = sp.csr_matrix(Q, dtype=np.float64).tolil()
    target = list(target)
    if not target:
        raise NumericsError("target state set is empty")
    n = Q.shape[0]
    for s in target:
        if not 0 <= s < n:
            raise NumericsError(f"target state {s} out of range 0..{n - 1}")
        Q.rows[s] = []
        Q.data[s] = []
    Qa = Q.tocsr()
    dist = transient_distribution(Qa, pi0, times, epsilon)
    return dist[:, target].sum(axis=1)


def expected_hitting_time(
    Q: sp.spmatrix,
    pi0: Sequence[float] | np.ndarray,
    target: Sequence[int],
) -> float:
    """Mean first-passage time into ``target``, by solving the linear
    system on the non-target states::

        Q_TT @ h = -1,   E[T] = pi0_T @ h

    where ``T`` indexes transient (non-target) states.  States that
    cannot reach the target make the system singular and raise.
    """
    Q = sp.csr_matrix(Q, dtype=np.float64)
    n = Q.shape[0]
    target_set = set(int(t) for t in target)
    trans = np.array([i for i in range(n) if i not in target_set], dtype=np.intp)
    if trans.size == 0:
        return 0.0
    pi0 = _as_distribution(pi0, n)
    Qtt = Q[trans][:, trans].tocsc()
    rhs = -np.ones(trans.size)
    try:
        import scipy.sparse.linalg as spla

        h = spla.splu(Qtt).solve(rhs)
    except RuntimeError as exc:
        raise NumericsError(
            f"hitting-time system is singular (some state cannot reach the target): {exc}"
        ) from exc
    if not np.isfinite(h).all() or (h < -1e-9).any():
        raise NumericsError("hitting-time solve produced invalid (negative/inf) times")
    return float(pi0[trans] @ h)
