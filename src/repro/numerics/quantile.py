"""Quantiles of sampled CDFs.

One correct implementation shared by every result type that carries a
``(times, cdf)`` curve (PEPA passage times, allocation finishing
times).  The semantics are those of the generalized inverse on the
piecewise-linear interpolant of the sampled curve:

    quantile(q) = the earliest time t in the grid's span with F(t) >= q

Two subtleties the previously duplicated copies got wrong:

* When ``q`` exactly equals a grid CDF value, the bracketing index must
  point at the *first* grid point attaining that value, and the grid
  time must be returned exactly — interpolating ``t0 + 1.0 * (t1 - t0)``
  reintroduces floating-point noise around an exact hit.
* On a plateau (repeated CDF values), the quantile is the time the
  level is first reached, never a later plateau point — and never a
  time *before* the level is reached.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NumericsError

__all__ = ["cdf_quantile"]


def cdf_quantile(times, cdf, q: float) -> float:
    """The ``q`` quantile of a CDF sampled on a time grid.

    Parameters
    ----------
    times:
        Strictly increasing evaluation grid.
    cdf:
        Sampled CDF values, non-decreasing, aligned with ``times``.
    q:
        Level in ``[0, 1]``.

    Returns
    -------
    float
        The earliest time at which the piecewise-linear interpolant of
        the sampled curve reaches ``q`` (exactly a grid time whenever
        ``q`` equals a sampled value).

    Raises
    ------
    ValueError
        If ``q`` is outside ``[0, 1]`` or the inputs are malformed.
    NumericsError
        If the sampled CDF never reaches ``q`` on the grid.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile level must be in [0, 1], got {q}")
    times = np.asarray(times, dtype=np.float64)
    cdf = np.asarray(cdf, dtype=np.float64)
    if times.ndim != 1 or times.size < 1 or times.shape != cdf.shape:
        raise ValueError(
            f"times and cdf must be equal-length 1-D arrays, got shapes "
            f"{times.shape} and {cdf.shape}"
        )
    if q <= cdf[0]:
        return float(times[0])
    if q > cdf[-1]:
        raise NumericsError(
            f"CDF only reaches {cdf[-1]:.6f} on the given grid; "
            f"extend the time horizon to evaluate the {q} quantile"
        )
    # Leftmost index with cdf[idx] >= q; the guards above ensure
    # 1 <= idx < len(cdf) and cdf[idx - 1] < q <= cdf[idx].
    idx = int(np.searchsorted(cdf, q, side="left"))
    if cdf[idx] == q:
        # Exact grid hit (including the start of a plateau at level q).
        return float(times[idx])
    t0, t1 = times[idx - 1], times[idx]
    f0, f1 = cdf[idx - 1], cdf[idx]
    return float(t0 + (q - f0) * (t1 - t0) / (f1 - f0))
